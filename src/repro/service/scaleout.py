"""Scale-out serving: async frontend, demand tracking, cache warming.

Three pieces that turn one :class:`~repro.service.RoutingService` into a
frontend that holds up under production-shaped load:

* :class:`AsyncFrontend` — an asyncio frontend speaking the existing JSON
  wire protocol (newline-delimited JSON over TCP), with searches running
  in a thread-pool executor so the event loop never blocks.  Thousands of
  idle client connections cost coroutines, not threads; a request's
  ``deadline_ms`` is charged for its queue wait with exactly the
  :class:`~repro.service.frontend.ThreadedFrontend` semantics (the shared
  :func:`~repro.service.frontend.charge_queue_wait`).
* :class:`DemandMatrix` — a bounded top-K census of the OD pairs actually
  being served, buildable live from traffic (the frontend feeds it) or
  offline from a recorded workload.
* :class:`CacheWarmer` — replays the demand matrix's hottest pairs against
  the service after each cost hot-swap, so a version bump (which strands
  every cached answer by construction) does not crater the hit rate for
  the next thousand live requests.  Warming runs at background priority:
  bounded concurrency, optional yield between replays, and an immediate
  abort when yet another version bump lands mid-warm.

Everything here *wires into* the existing stack — the service's
``handle_request`` contract, ``FrontendStats``, the coalescing and
degradation machinery — rather than standing beside it.
"""

from __future__ import annotations

import asyncio
import json
import numbers
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

from ..routing import RoutingQuery
from .errors import FrontendClosedError, error_kind
from .frontend import FrontendStats, charge_queue_wait
from .service import RoutingService

__all__ = [
    "AsyncFrontend",
    "CacheWarmer",
    "DemandEntry",
    "DemandMatrix",
    "WarmerStats",
]


# ----------------------------------------------------------------------
# Demand tracking
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DemandEntry:
    """One observed request shape and how often it was served."""

    source: int
    target: int
    budget: int
    strategy: str
    slice_name: str | None
    count: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "source": self.source,
            "target": self.target,
            "budget": self.budget,
            "strategy": self.strategy,
            "slice": self.slice_name,
            "count": self.count,
        }


class DemandMatrix:
    """A bounded, thread-safe census of served OD-pair demand.

    Keys are the *cacheable request shape* —
    ``(slice, strategy, source, target, budget)`` — which is exactly the
    cache key minus kwargs and version, so replaying a hot entry produces
    the cache entry live traffic will hit.  ``max_pairs`` bounds memory:
    at the cap, recording a new shape evicts the lowest-count one
    (ties broken against the most recently first-seen shape, so
    long-standing demand survives churn).

    Feed it live via :meth:`record_response` (the shape of a frontend
    deliver hook) or offline via :meth:`record`; read it via :meth:`top`.
    """

    def __init__(self, *, max_pairs: int = 4096) -> None:
        if (
            isinstance(max_pairs, bool)
            or not isinstance(max_pairs, numbers.Integral)
            or max_pairs < 1
        ):
            raise ValueError(
                f"max_pairs must be a positive integer, got {max_pairs!r}"
            )
        self.max_pairs = int(max_pairs)
        self._lock = threading.Lock()
        #: key -> [count, first-seen sequence number]
        self._pairs: dict[tuple, list[int]] = {}
        self._seq = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._pairs)

    @property
    def total(self) -> int:
        """Total recordings across every tracked pair (evictions excluded)."""
        with self._lock:
            return sum(entry[0] for entry in self._pairs.values())

    def record(
        self,
        source: int,
        target: int,
        budget: int,
        *,
        strategy: str = "pbr",
        slice_name: str | None = None,
        count: int = 1,
    ) -> None:
        """Count one (or ``count``) served requests for a request shape."""
        if (
            isinstance(count, bool)
            or not isinstance(count, numbers.Integral)
            or count < 1
        ):
            raise ValueError(f"count must be a positive integer, got {count!r}")
        key = (slice_name, strategy, int(source), int(target), int(budget))
        with self._lock:
            entry = self._pairs.get(key)
            if entry is None:
                self._pairs[key] = [int(count), self._seq]
                self._seq += 1
                while len(self._pairs) > self.max_pairs:
                    coldest = min(
                        self._pairs,
                        key=lambda k: (self._pairs[k][0], -self._pairs[k][1]),
                    )
                    del self._pairs[coldest]
            else:
                entry[0] += int(count)

    def record_response(
        self, request: Mapping[str, Any], response: Mapping[str, Any]
    ) -> None:
        """Record one served wire exchange (deliver-hook shaped).

        Only successful single-route responses count — demand is what the
        service actually served, so errors and batch/admin ops are
        ignored.  Requests carrying ``time_limit_seconds`` or strategy
        kwargs are skipped too: their cache keys differ from what a warm
        replay would produce, so warming them cannot help live traffic.
        """
        if not isinstance(request, Mapping) or not isinstance(response, Mapping):
            return
        if request.get("op") not in ("route", "route_at"):
            return
        if not response.get("ok") or response.get("kind") != "served":
            return
        if request.get("time_limit_seconds") is not None or request.get("kwargs"):
            return
        query = request.get("query")
        if not isinstance(query, Mapping):
            return
        try:
            self.record(
                int(query["source"]),
                int(query["target"]),
                int(query["budget"]),
                strategy=str(response.get("strategy", "pbr")),
                # The response names the slice route_at resolved to.
                slice_name=response.get("slice"),
            )
        except (KeyError, TypeError, ValueError):
            return  # malformed-but-ok document: not worth recording

    def top(self, k: int | None = None) -> list[DemandEntry]:
        """The hottest pairs, highest count first (ties: first seen first)."""
        with self._lock:
            ranked = sorted(
                self._pairs.items(), key=lambda item: (-item[1][0], item[1][1])
            )
        if k is not None:
            ranked = ranked[:k]
        return [
            DemandEntry(
                source=key[2],
                target=key[3],
                budget=key[4],
                strategy=key[1],
                slice_name=key[0],
                count=entry[0],
            )
            for key, entry in ranked
        ]

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dump (exact :meth:`from_dict` round-trip), hot first."""
        return {
            "kind": "demand_matrix",
            "max_pairs": self.max_pairs,
            "pairs": [entry.to_dict() for entry in self.top()],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DemandMatrix":
        if data.get("kind") != "demand_matrix":
            raise ValueError(
                f"expected a demand_matrix document, got kind={data.get('kind')!r}"
            )
        matrix = cls(max_pairs=data["max_pairs"])
        for pair in data["pairs"]:
            matrix.record(
                pair["source"],
                pair["target"],
                pair["budget"],
                strategy=pair["strategy"],
                slice_name=pair.get("slice"),
                count=pair["count"],
            )
        return matrix


# ----------------------------------------------------------------------
# Demand-driven cache warming
# ----------------------------------------------------------------------


class WarmerStats:
    """Cumulative warmer counters (atomic snapshot via ``read``)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.runs = 0
        self.warmed = 0
        self.warm_hits = 0
        self.warm_errors = 0
        self.aborted = 0

    def _bump(self, field: str) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + 1)

    def read(self) -> dict[str, int]:
        with self._lock:
            return {
                "runs": self.runs,
                "warmed": self.warmed,
                "warm_hits": self.warm_hits,
                "warm_errors": self.warm_errors,
                "aborted": self.aborted,
            }


class CacheWarmer:
    """Replay the hottest demand against the service after a hot-swap.

    A cost-version bump strands every cached answer for its slice, so the
    next request for each hot OD pair pays a full search at live-traffic
    latency.  The warmer pays those searches *off* the request path
    instead: :meth:`warm` replays the demand matrix's top ``top_k`` pairs
    through the ordinary :meth:`RoutingService.route` path (same cache,
    same admission policy, same coalescing — a live request arriving
    mid-warm simply coalesces onto the warm search).

    Background priority, by construction: at most ``concurrency`` replays
    in flight (default 1), an optional ``yield_seconds`` sleep between
    replays, and an abort as soon as the slice's version moves again
    mid-warm — the freshly warmed entries would be stranded anyway, and
    the warm for the *new* version is about to be scheduled.

    Counters (:attr:`stats`): ``warmed`` replays that really searched,
    ``warm_hits`` replays that found the entry already present (live
    traffic beat us to it, or a previous warm did), ``warm_errors``
    replays that failed, ``aborted`` warms cut short by a version change.
    """

    def __init__(
        self,
        service: RoutingService,
        demand: DemandMatrix,
        *,
        top_k: int = 256,
        concurrency: int = 1,
        yield_seconds: float = 0.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if (
            isinstance(top_k, bool)
            or not isinstance(top_k, numbers.Integral)
            or top_k < 1
        ):
            raise ValueError(f"top_k must be a positive integer, got {top_k!r}")
        if (
            isinstance(concurrency, bool)
            or not isinstance(concurrency, numbers.Integral)
            or concurrency < 1
        ):
            raise ValueError(
                f"concurrency must be a positive integer, got {concurrency!r}"
            )
        if (
            isinstance(yield_seconds, bool)
            or not isinstance(yield_seconds, numbers.Real)
            or not yield_seconds >= 0
        ):
            raise ValueError(
                f"yield_seconds must be a non-negative number, got {yield_seconds!r}"
            )
        self.service = service
        self.demand = demand
        self.top_k = int(top_k)
        self.concurrency = int(concurrency)
        self.yield_seconds = float(yield_seconds)
        self._sleep = sleep
        self.stats = WarmerStats()
        self._warm_lock = threading.Lock()  # one warm run at a time
        self._state_lock = threading.Lock()
        self._last_warmed: dict[str, int] = {}

    def notify_update(self, slice_name: str | None = None) -> bool:
        """Warm one slice iff its cost version moved since the last warm.

        The hook a frontend calls after applying a cost update; returns
        whether a warm actually ran.  Idempotent per version: replayed or
        duplicate notifications are no-ops.
        """
        name = self.service._resolve_slice(slice_name)
        current = self.service.cost_version(name)
        with self._state_lock:
            if self._last_warmed.get(name) == current:
                return False
        self.warm(slice_name=name)
        return True

    def warm(self, slice_name: str | None = None) -> int:
        """Replay the top-K demand for one slice; returns replays attempted.

        Entries recorded without an explicit slice belong to the service's
        default slice.  The slice's cost version is read once up front;
        if it moves mid-warm the run aborts (counted under ``aborted``) —
        the remaining replays would warm a version already stranded.
        """
        name = self.service._resolve_slice(slice_name)
        with self._warm_lock:
            target_version = self.service.cost_version(name)
            entries = [
                entry
                for entry in self.demand.top(self.top_k)
                if (
                    entry.slice_name
                    if entry.slice_name is not None
                    else self.service.default_slice
                )
                == name
            ]
            self.stats._bump("runs")
            attempted = 0
            aborted = False
            if self.concurrency > 1 and len(entries) > 1:
                with ThreadPoolExecutor(
                    max_workers=self.concurrency,
                    thread_name_prefix="cache-warmer",
                ) as pool:
                    for entry in entries:
                        if self.service.cost_version(name) != target_version:
                            aborted = True
                            break
                        pool.submit(self._replay, entry, name, target_version)
                        attempted += 1
                        if self.yield_seconds > 0:
                            self._sleep(self.yield_seconds)
            else:
                for entry in entries:
                    if self.service.cost_version(name) != target_version:
                        aborted = True
                        break
                    self._replay(entry, name, target_version)
                    attempted += 1
                    if self.yield_seconds > 0:
                        self._sleep(self.yield_seconds)
            if aborted:
                self.stats._bump("aborted")
            else:
                with self._state_lock:
                    self._last_warmed[name] = target_version
            return attempted

    def _replay(self, entry: DemandEntry, name: str, target_version: int) -> None:
        try:
            served = self.service.route(
                RoutingQuery(entry.source, entry.target, entry.budget),
                strategy=entry.strategy,
                slice_name=name,
            )
        except Exception:
            self.stats._bump("warm_errors")
            return
        if served.cost_version != target_version:
            # A bump landed while this replay ran; the answer is tagged
            # with a version live lookups will never ask for again.
            self.stats._bump("warm_errors")
        elif served.cache_hit or served.coalesced:
            self.stats._bump("warm_hits")
        else:
            self.stats._bump("warmed")


# ----------------------------------------------------------------------
# Async frontend
# ----------------------------------------------------------------------


class AsyncFrontend:
    """An asyncio frontend over one :class:`RoutingService`.

    The async sibling of :class:`~repro.service.frontend.ThreadedFrontend`
    — same wire protocol, same always-answer contract, same
    :class:`FrontendStats` — built for connection scale: clients are
    coroutines (or TCP connections), and only the searches themselves
    occupy the ``num_workers`` executor threads.  A request's
    ``deadline_ms`` is charged for the time between submission and
    executor pickup via the shared
    :func:`~repro.service.frontend.charge_queue_wait`, so queue wait
    degrades a request exactly as it does on the threaded path.

    ``max_pending`` (0 = unbounded) bounds submitted-but-unfinished
    requests with an :class:`asyncio.Semaphore` — backpressure, not an
    error, like the threaded queue bound.

    Optional wiring: a :class:`DemandMatrix` (``demand``) is fed every
    served route, and a :class:`CacheWarmer` (``warmer``) is notified —
    off the request path, on a dedicated single-thread executor — after
    every successfully applied cost update, so hot-swaps arriving over
    the wire re-warm the cache automatically.

    With ``port`` given (0 = ephemeral), :meth:`start` also listens for
    newline-delimited JSON over TCP: one request per line, one response
    per line, responses in request order per connection while up to
    ``pipeline_depth`` requests per connection execute concurrently.

    Use as an async context manager::

        async with AsyncFrontend(service, port=0) as frontend:
            response = await frontend.submit({"op": "stats"})
    """

    def __init__(
        self,
        service: RoutingService,
        *,
        num_workers: int = 4,
        max_pending: int = 0,
        demand: DemandMatrix | None = None,
        warmer: CacheWarmer | None = None,
        clock: Callable[[], float] = time.monotonic,
        host: str = "127.0.0.1",
        port: int | None = None,
        pipeline_depth: int = 64,
    ) -> None:
        if (
            isinstance(num_workers, bool)
            or not isinstance(num_workers, numbers.Integral)
            or num_workers < 1
        ):
            raise ValueError(
                f"num_workers must be a positive integer, got {num_workers!r}"
            )
        if (
            isinstance(max_pending, bool)
            or not isinstance(max_pending, numbers.Integral)
            or max_pending < 0
        ):
            raise ValueError(
                f"max_pending must be a non-negative integer, got {max_pending!r}"
            )
        if (
            isinstance(pipeline_depth, bool)
            or not isinstance(pipeline_depth, numbers.Integral)
            or pipeline_depth < 1
        ):
            raise ValueError(
                f"pipeline_depth must be a positive integer, got {pipeline_depth!r}"
            )
        self.service = service
        self.num_workers = int(num_workers)
        self.max_pending = int(max_pending)
        self.demand = demand
        self.warmer = warmer
        self.host = host
        self.port = port
        self.pipeline_depth = int(pipeline_depth)
        self._clock = clock
        self.stats = FrontendStats()
        self._executor: ThreadPoolExecutor | None = None
        self._warm_executor: ThreadPoolExecutor | None = None
        self._server: asyncio.AbstractServer | None = None
        self._pending: asyncio.Semaphore | None = None
        self._background: set[asyncio.Future] = set()
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "AsyncFrontend":
        """Spin up the executor (and TCP listener, when ``port`` is set)."""
        if self._closed:
            raise FrontendClosedError("frontend is closed and cannot restart")
        if self._started:
            return self
        self._started = True
        self._executor = ThreadPoolExecutor(
            max_workers=self.num_workers, thread_name_prefix="routing-async"
        )
        if self.warmer is not None:
            # One thread: warms for successive updates run in arrival
            # order, never as a thundering herd of warm threads.
            self._warm_executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="routing-warm"
            )
        if self.max_pending > 0:
            self._pending = asyncio.Semaphore(self.max_pending)
        if self.port is not None:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port
            )
        return self

    async def close(self) -> None:
        """Stop accepting work, finish in-flight requests, release threads."""
        if self._closed:
            return
        self._closed = True
        if not self._started:
            return
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._background:
            await asyncio.gather(*list(self._background), return_exceptions=True)
        loop = asyncio.get_running_loop()
        executor, self._executor = self._executor, None
        warm_executor, self._warm_executor = self._warm_executor, None
        if executor is not None:
            await loop.run_in_executor(None, executor.shutdown)
        if warm_executor is not None:
            await loop.run_in_executor(None, warm_executor.shutdown)

    async def __aenter__(self) -> "AsyncFrontend":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    @property
    def addresses(self) -> list[tuple]:
        """The (host, port) pairs the TCP listener is bound to."""
        if self._server is None:
            return []
        return [sock.getsockname()[:2] for sock in self._server.sockets]

    # ------------------------------------------------------------------
    # Request intake
    # ------------------------------------------------------------------

    async def submit(self, request: Mapping[str, Any]) -> dict[str, Any]:
        """Serve one wire request document; returns its response document.

        The coroutine-shaped :meth:`ThreadedFrontend.submit`: it suspends
        (never blocks the loop) while the search runs on an executor
        thread, and applies ``max_pending`` backpressure by awaiting the
        semaphore.  Raises :class:`FrontendClosedError` when the frontend
        was never started or is closing.
        """
        if not self._started or self._closed:
            raise FrontendClosedError(
                "frontend is not accepting requests (start() it first; "
                "closed frontends stay closed)"
            )
        self.stats._bump("submitted")
        arrival = self._clock()
        if self._pending is not None:
            async with self._pending:
                response = await self._run(request, arrival)
        else:
            response = await self._run(request, arrival)
        if self.demand is not None:
            self.demand.record_response(request, response)
        self._maybe_schedule_warm(request, response)
        self.stats._bump("completed")
        return response

    async def _run(
        self, request: Mapping[str, Any], arrival: float
    ) -> dict[str, Any]:
        executor = self._executor
        if executor is None:
            raise FrontendClosedError("frontend closed while the request was queued")
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(executor, self._serve, request, arrival)

    def _serve(self, request: Mapping[str, Any], arrival: float) -> dict[str, Any]:
        # Executor-thread side: the wait between submission and this
        # pickup is the async frontend's queue wait.
        return self.service.handle_request(
            charge_queue_wait(request, arrival, self._clock)
        )

    def _maybe_schedule_warm(
        self, request: Mapping[str, Any], response: Mapping[str, Any]
    ) -> None:
        """After a successful wire cost update, kick the warmer (background)."""
        if (
            self.warmer is None
            or self._warm_executor is None
            or request.get("op") != "apply_update"
            or not response.get("ok")
        ):
            return
        loop = asyncio.get_running_loop()
        task = loop.run_in_executor(
            self._warm_executor, self.warmer.notify_update, response.get("slice")
        )
        self._background.add(task)
        task.add_done_callback(self._background.discard)

    async def map_requests(
        self,
        requests: Iterable[Mapping[str, Any]],
        *,
        concurrency: int = 32,
    ) -> list[dict[str, Any]]:
        """Serve many requests concurrently; responses in input order.

        ``concurrency`` bounds how many are in flight at once (on top of
        any ``max_pending`` bound).  Like the threaded
        :meth:`~ThreadedFrontend.map_requests`, a close underfoot leaves
        nothing uncollected: every coroutine settles before the error
        propagates (``gather`` awaits them all).
        """
        if (
            isinstance(concurrency, bool)
            or not isinstance(concurrency, numbers.Integral)
            or concurrency < 1
        ):
            raise ValueError(
                f"concurrency must be a positive integer, got {concurrency!r}"
            )
        gate = asyncio.Semaphore(int(concurrency))

        async def one(request: Mapping[str, Any]) -> dict[str, Any]:
            async with gate:
                return await self.submit(request)

        results = await asyncio.gather(
            *(one(request) for request in list(requests)),
            return_exceptions=True,
        )
        for outcome in results:
            if isinstance(outcome, BaseException):
                raise outcome
        return list(results)

    # ------------------------------------------------------------------
    # Wire (newline-delimited JSON over TCP)
    # ------------------------------------------------------------------

    async def handle_line(self, line: str) -> str:
        """One JSON request line to one JSON response line.

        Parse-failure documents match :meth:`RoutingService.handle_json`
        exactly — the wire contract is the service's, whichever frontend
        speaks it.
        """
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            return json.dumps(
                {
                    "ok": False,
                    "error": f"JSONDecodeError: {exc}",
                    "error_kind": error_kind(exc),
                }
            )
        if not isinstance(request, Mapping):
            return json.dumps(
                {
                    "ok": False,
                    "error": "TypeError: request must be an object",
                    "error_kind": "bad_request",
                }
            )
        try:
            response = await self.submit(request)
        except FrontendClosedError as exc:
            # A request that raced shutdown still gets an answer document
            # before its connection is torn down.
            response = {
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "error_kind": error_kind(exc),
            }
        return json.dumps(response)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One client connection: pipelined requests, ordered responses.

        Each request line starts executing immediately (up to
        ``pipeline_depth`` per connection); a single writer coroutine
        awaits the response tasks in arrival order, so responses line up
        with requests without any client-side correlation ids.
        """
        in_order: asyncio.Queue = asyncio.Queue(maxsize=self.pipeline_depth)

        async def write_responses() -> None:
            while True:
                task = await in_order.get()
                if task is None:
                    return
                try:
                    response_line = await task
                except Exception as exc:
                    response_line = json.dumps(
                        {
                            "ok": False,
                            "error": f"{type(exc).__name__}: {exc}",
                            "error_kind": error_kind(exc),
                        }
                    )
                writer.write(response_line.encode("utf-8") + b"\n")
                await writer.drain()

        responder = asyncio.create_task(write_responses())
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                await in_order.put(asyncio.create_task(self.handle_line(text)))
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; drain what we have and close
        finally:
            await in_order.put(None)
            try:
                await responder
            except (ConnectionResetError, BrokenPipeError):
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
