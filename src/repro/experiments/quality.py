"""E5 — the Quality table.

The paper reports, per distance band, the routing-quality gain of the hybrid
model for the unbounded search (P∞) and the anytime variants with 1/5/10 s
limits (P1/P5/P10); the gain grows with distance (13 % / 53 % / 60 % for P∞)
and tight anytime limits cost a little quality on long queries.

Metric (the paper's short format leaves it implicit; we make it explicit and
record it in EXPERIMENTS.md): for each query, route once with the hybrid
combiner and once with the convolution baseline, evaluate *both* returned
paths under the exact ground-truth traffic model, and report the mean
relative improvement of the hybrid path's on-time probability::

    gain = (P_truth(path_hybrid) - P_truth(path_conv)) / P_truth(path_conv)

averaged over the band's queries (queries where both paths coincide
contribute zero gain).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.models import CostCombiner
from ..network import RoadNetwork
from ..routing import RoutingEngine, RoutingResult
from ..trajectories import CongestionModel
from ._engines import require_matching_engine
from .config import DistanceBand
from .tables import format_percent, render_table
from .workloads import BandedQuery

__all__ = ["QualityCell", "QualityRow", "QualityTable", "run_quality_experiment"]

_MIN_BASELINE_PROBABILITY = 1e-6


@dataclass(frozen=True)
class QualityCell:
    """Mean gain for one (band, time-limit) combination."""

    label: str
    mean_gain: float
    num_queries: int
    num_wins: int
    num_ties: int


@dataclass(frozen=True)
class QualityRow:
    """One distance band: P∞ plus each anytime limit."""

    band: DistanceBand
    cells: tuple[QualityCell, ...]


@dataclass(frozen=True)
class QualityTable:
    """The full Quality table plus its rendering."""

    rows: tuple[QualityRow, ...]
    anytime_limits: tuple[float, ...]

    def render(self) -> str:
        headers = ["Dist (km)", "P-inf"] + [
            f"P{limit:g}s" for limit in self.anytime_limits
        ]
        body = []
        for row in self.rows:
            body.append(
                [row.band.label]
                + [format_percent(cell.mean_gain) for cell in row.cells]
            )
        return render_table(headers, body, title="Quality (hybrid gain over convolution routing)")


def _truth_probability(
    truth: CongestionModel, result: RoutingResult, budget: int
) -> float:
    if not result.found:
        return 0.0
    return truth.path_probability_within(list(result.path), budget)


def _gain(hybrid_prob: float, conv_prob: float) -> float:
    baseline = max(conv_prob, _MIN_BASELINE_PROBABILITY)
    return (hybrid_prob - conv_prob) / baseline


def run_quality_experiment(
    network: RoadNetwork,
    hybrid: CostCombiner,
    convolution: CostCombiner,
    truth: CongestionModel,
    workload: dict[DistanceBand, list[BandedQuery]],
    *,
    anytime_limits: tuple[float, ...] = (),
    hybrid_engine: RoutingEngine | None = None,
    convolution_engine: RoutingEngine | None = None,
) -> QualityTable:
    """Regenerate the Quality table on a prepared workload.

    The convolution baseline always runs unbounded (it is the reference
    policy); the hybrid runs unbounded for P∞ and once per anytime limit.
    The optional ``*_engine`` arguments let the orchestration runner pass
    its shared :class:`RoutingEngine` instances (warm caches); a supplied
    engine must wrap exactly the explicit network/combiner arguments.
    """
    if hybrid_engine is None:
        hybrid_engine = RoutingEngine(network, hybrid)
    else:
        require_matching_engine(hybrid_engine, network, hybrid, name="hybrid_engine")
    if convolution_engine is None:
        convolution_engine = RoutingEngine(network, convolution)
    else:
        require_matching_engine(
            convolution_engine, network, convolution, name="convolution_engine"
        )

    rows = []
    for band, queries in workload.items():
        per_limit_gains: dict[str, list[float]] = {"inf": []}
        wins: dict[str, int] = {"inf": 0}
        ties: dict[str, int] = {"inf": 0}
        for limit in anytime_limits:
            per_limit_gains[f"{limit:g}"] = []
            wins[f"{limit:g}"] = 0
            ties[f"{limit:g}"] = 0

        for banded in queries:
            query = banded.query
            conv_result = convolution_engine.route(query)
            conv_prob = _truth_probability(truth, conv_result, query.budget)

            unbounded = hybrid_engine.route(query)
            h_prob = _truth_probability(truth, unbounded, query.budget)
            per_limit_gains["inf"].append(_gain(h_prob, conv_prob))
            if h_prob > conv_prob + 1e-12:
                wins["inf"] += 1
            elif abs(h_prob - conv_prob) <= 1e-12:
                ties["inf"] += 1

            for limit in anytime_limits:
                bounded = hybrid_engine.route(
                    query, strategy="anytime", time_limit_seconds=limit
                )
                b_prob = _truth_probability(truth, bounded, query.budget)
                key = f"{limit:g}"
                per_limit_gains[key].append(_gain(b_prob, conv_prob))
                if b_prob > conv_prob + 1e-12:
                    wins[key] += 1
                elif abs(b_prob - conv_prob) <= 1e-12:
                    ties[key] += 1

        cells = []
        for key in ("inf", *(f"{limit:g}" for limit in anytime_limits)):
            gains = per_limit_gains[key]
            cells.append(
                QualityCell(
                    label=key,
                    mean_gain=sum(gains) / len(gains) if gains else 0.0,
                    num_queries=len(gains),
                    num_wins=wins[key],
                    num_ties=ties[key],
                )
            )
        rows.append(QualityRow(band=band, cells=tuple(cells)))
    return QualityTable(rows=tuple(rows), anytime_limits=tuple(anytime_limits))
