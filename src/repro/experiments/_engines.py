"""Shared validation for experiment drivers that accept a RoutingEngine.

Drivers take explicit ``network``/``combiner`` (and sometimes ``pruning``)
arguments for standalone use plus an optional pre-warmed engine from the
orchestration runner.  A mismatch between the two would measure one
configuration while the rendered table claims another, so it is rejected
here rather than silently resolved in the engine's favour.
"""

from __future__ import annotations

from ..core.models import CostCombiner
from ..network import RoadNetwork
from ..routing import PruningConfig, RoutingEngine

__all__ = ["require_matching_engine"]


def require_matching_engine(
    engine: RoutingEngine,
    network: RoadNetwork,
    combiner: CostCombiner,
    *,
    pruning: PruningConfig | None = None,
    name: str = "engine",
) -> RoutingEngine:
    """Validate that ``engine`` wraps exactly the explicit arguments.

    ``pruning`` is only compared when the caller passed one explicitly
    (``None`` means "engine's default is fine").  Returns the engine so
    call sites can validate and assign in one expression.
    """
    if (
        engine.network is not network
        or engine.combiner is not combiner
        or (pruning is not None and engine.pruning != pruning)
    ):
        raise ValueError(
            f"{name} disagrees with the explicit network/combiner/pruning "
            "arguments; pass engine.combiner (etc.) or drop the engine"
        )
    return engine
