"""E6 — the Efficiency table.

The paper reports the mean PBR runtime per distance band on the Danish
network: 0.06 s for [0,1) km, 3.37 s for [1,5) km, 9.73 s for [5,10) km —
roughly two orders of magnitude growth from the shortest to the longest
band.  We reproduce the *shape* (monotone, super-linear growth with query
distance) on the synthetic network; absolute values differ because both the
substrate (Python vs the authors' testbed) and the graph scale differ.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.models import CostCombiner
from ..network import RoadNetwork
from ..routing import PruningConfig, RoutingEngine
from ._engines import require_matching_engine
from .config import DistanceBand
from .tables import format_seconds, render_table
from .workloads import BandedQuery

__all__ = ["EfficiencyRow", "EfficiencyTable", "run_efficiency_experiment"]


@dataclass(frozen=True)
class EfficiencyRow:
    """Mean runtime and search effort for one distance band."""

    band: DistanceBand
    mean_seconds: float
    max_seconds: float
    mean_labels_generated: float
    mean_labels_expanded: float
    num_queries: int


@dataclass(frozen=True)
class EfficiencyTable:
    rows: tuple[EfficiencyRow, ...]

    def render(self) -> str:
        headers = ["Dist (km)", "Mean (sec)", "Max (sec)", "Labels"]
        body = [
            [
                row.band.label,
                format_seconds(row.mean_seconds, digits=3),
                format_seconds(row.max_seconds, digits=3),
                f"{row.mean_labels_generated:.0f}",
            ]
            for row in self.rows
        ]
        return render_table(headers, body, title="Efficiency (PBR, full pruning)")


def run_efficiency_experiment(
    network: RoadNetwork,
    combiner: CostCombiner,
    workload: dict[DistanceBand, list[BandedQuery]],
    *,
    pruning: PruningConfig | None = None,
    engine: RoutingEngine | None = None,
) -> EfficiencyTable:
    """Time the unbounded PBR search on every workload query.

    ``engine`` lets the orchestration runner supply its shared
    :class:`RoutingEngine` (warm caches); by default a fresh one is built
    over ``(network, combiner, pruning)``.  A supplied engine must agree
    with the explicit arguments — a mismatch would time one configuration
    while the table claims another.
    """
    if engine is None:
        engine = RoutingEngine(network, combiner, pruning=pruning)
    else:
        require_matching_engine(engine, network, combiner, pruning=pruning)
    rows = []
    for band, queries in workload.items():
        seconds: list[float] = []
        generated: list[int] = []
        expanded: list[int] = []
        for banded in queries:
            begin = time.perf_counter()
            result = engine.route(banded.query)
            seconds.append(time.perf_counter() - begin)
            generated.append(result.stats.labels_generated)
            expanded.append(result.stats.labels_expanded)
        rows.append(
            EfficiencyRow(
                band=band,
                mean_seconds=sum(seconds) / len(seconds),
                max_seconds=max(seconds),
                mean_labels_generated=sum(generated) / len(generated),
                mean_labels_expanded=sum(expanded) / len(expanded),
                num_queries=len(queries),
            )
        )
    return EfficiencyTable(rows=tuple(rows))
