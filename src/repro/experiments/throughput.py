"""Batch-serving experiments: worker scaling and multi-budget sweeps.

The paper evaluates stochastic routing over whole query workloads and
budget sweeps, not single queries.  These two artefacts put the engine's
batch modes under measurement:

* :func:`run_throughput_experiment` times :meth:`RoutingEngine.route_many`
  over the flattened workload at several worker counts — the serving-side
  counterpart of the E6 efficiency table;
* :func:`run_budget_sweep_experiment` answers every workload query for a
  whole vector of budget factors through the ``multi_budget`` strategy
  (one label search per query instead of one per factor) and reports the
  mean arrival probability per band and factor — the paper's
  budget-vs-reliability trade-off at workload scale;
* :func:`run_cached_serving_experiment` replays the workload through a
  :class:`~repro.service.RoutingService` pass after pass — the repeated-OD
  regime of production traffic — and reports per-pass wall clock and hit
  rate against the uncached ``route_many`` reference.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Sequence

from ..core.models import CostCombiner
from ..network import RoadNetwork
from ..routing import RoutingEngine, normalize_budgets
from ..service import RoutingService
from ._engines import require_matching_engine
from .config import DistanceBand
from .tables import format_percent, format_seconds, render_table
from .workloads import BandedQuery

__all__ = [
    "ThroughputRow",
    "ThroughputTable",
    "run_throughput_experiment",
    "BudgetSweepRow",
    "BudgetSweepTable",
    "run_budget_sweep_experiment",
    "CachedServingRow",
    "CachedServingTable",
    "run_cached_serving_experiment",
]


@dataclass(frozen=True)
class ThroughputRow:
    """Batch wall-clock at one worker count."""

    workers: int
    wall_seconds: float
    queries_per_second: float
    speedup_vs_serial: float
    num_found: int


@dataclass(frozen=True)
class ThroughputTable:
    rows: tuple[ThroughputRow, ...]
    num_queries: int

    def render(self) -> str:
        headers = ["Workers", "Wall (sec)", "Queries/s", "Speedup"]
        body = [
            [
                str(row.workers),
                format_seconds(row.wall_seconds, digits=3),
                f"{row.queries_per_second:.1f}",
                f"{row.speedup_vs_serial:.2f}x",
            ]
            for row in self.rows
        ]
        return render_table(
            headers, body, title=f"Batch throughput ({self.num_queries} queries)"
        )

    def row_for(self, workers: int) -> ThroughputRow:
        for row in self.rows:
            if row.workers == workers:
                return row
        raise KeyError(f"no throughput row for workers={workers}")


def run_throughput_experiment(
    network: RoadNetwork,
    combiner: CostCombiner,
    workload: dict[DistanceBand, list[BandedQuery]],
    *,
    workers: Sequence[int] = (1, 2, 4),
    engine: RoutingEngine | None = None,
) -> ThroughputTable:
    """Time the whole flattened workload through ``route_many``.

    ``workers`` must start with 1 (the serial reference every speedup is
    relative to).  The serial pass runs first and warms the shared caches,
    which is the conservative direction for the reported speedups: parallel
    workers rebuild their caches from scratch inside the measured window.
    """
    workers = tuple(workers)
    if not workers or workers[0] != 1:
        raise ValueError("workers must start with 1 (the serial reference)")
    if engine is None:
        engine = RoutingEngine(network, combiner)
    else:
        require_matching_engine(engine, network, combiner)
    queries = [banded.query for members in workload.values() for banded in members]
    rows = []
    serial_seconds = None
    for count in workers:
        begin = time.perf_counter()
        batch = engine.route_many(queries, workers=None if count == 1 else count)
        elapsed = time.perf_counter() - begin
        if serial_seconds is None:
            serial_seconds = elapsed
        rows.append(
            ThroughputRow(
                workers=count,
                wall_seconds=elapsed,
                queries_per_second=len(queries) / elapsed if elapsed > 0 else 0.0,
                speedup_vs_serial=serial_seconds / elapsed if elapsed > 0 else 0.0,
                num_found=batch.num_found,
            )
        )
    return ThroughputTable(rows=tuple(rows), num_queries=len(queries))


@dataclass(frozen=True)
class BudgetSweepRow:
    """Mean arrival probability per budget factor for one distance band."""

    band: DistanceBand
    factors: tuple[float, ...]
    mean_probabilities: tuple[float, ...]
    num_queries: int


@dataclass(frozen=True)
class BudgetSweepTable:
    rows: tuple[BudgetSweepRow, ...]

    def render(self) -> str:
        factors = self.rows[0].factors if self.rows else ()
        headers = ["Dist (km)", *(f"x{factor:g}" for factor in factors)]
        body = [
            [
                row.band.label,
                *(format_percent(p, digits=1) for p in row.mean_probabilities),
            ]
            for row in self.rows
        ]
        return render_table(
            headers, body, title="Arrival probability vs budget factor"
        )


@dataclass(frozen=True)
class CachedServingRow:
    """One serving pass over the workload through the result cache."""

    pass_index: int
    wall_seconds: float
    queries_per_second: float
    cache_hits: int
    cache_misses: int
    speedup_vs_uncached: float

    @property
    def hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0


@dataclass(frozen=True)
class CachedServingTable:
    """Per-pass serving wall clocks against the uncached reference."""

    rows: tuple[CachedServingRow, ...]
    num_queries: int
    uncached_seconds: float

    def render(self) -> str:
        headers = ["Pass", "Wall (sec)", "Queries/s", "Hit rate", "Speedup"]
        body = [
            [
                str(row.pass_index),
                format_seconds(row.wall_seconds, digits=3),
                f"{row.queries_per_second:.1f}",
                format_percent(row.hit_rate, digits=1),
                f"{row.speedup_vs_uncached:.2f}x",
            ]
            for row in self.rows
        ]
        return render_table(
            headers,
            body,
            title=(
                f"Cached serving ({self.num_queries} queries/pass; uncached "
                f"route_many {format_seconds(self.uncached_seconds, digits=3)})"
            ),
        )

    @property
    def steady_state(self) -> CachedServingRow:
        """The last pass — what a long-lived service actually serves at."""
        return self.rows[-1]

    @property
    def overall_hit_rate(self) -> float:
        hits = sum(row.cache_hits for row in self.rows)
        lookups = hits + sum(row.cache_misses for row in self.rows)
        return hits / lookups if lookups else 0.0


def run_cached_serving_experiment(
    network: RoadNetwork,
    combiner: CostCombiner,
    workload: dict[DistanceBand, list[BandedQuery]],
    *,
    passes: int = 3,
    engine: RoutingEngine | None = None,
    max_cache_entries: int = 4096,
) -> CachedServingTable:
    """Replay the workload through a result-cached service, pass by pass.

    Pass 1 is all misses (it fills the cache); later passes are the
    repeated-OD regime a deployed service lives in.  The uncached reference
    is one warm ``route_many`` over the same queries on the same engine, so
    the reported speedups isolate the cache, not heuristic warm-up.
    """
    if passes < 2:
        raise ValueError("need at least 2 passes (fill + at least one serve)")
    if engine is None:
        engine = RoutingEngine(network, combiner)
    else:
        require_matching_engine(engine, network, combiner)
    queries = [banded.query for members in workload.values() for banded in members]
    engine.route_many(queries)  # warm heuristics/CDFs for a fair reference
    begin = time.perf_counter()
    engine.route_many(queries)
    uncached_seconds = time.perf_counter() - begin

    service = RoutingService(
        network, combiner, max_cache_entries=max_cache_entries
    )
    rows = []
    for pass_index in range(1, passes + 1):
        begin = time.perf_counter()
        served = service.route_many(queries)
        elapsed = time.perf_counter() - begin
        rows.append(
            CachedServingRow(
                pass_index=pass_index,
                wall_seconds=elapsed,
                queries_per_second=len(queries) / elapsed if elapsed > 0 else 0.0,
                cache_hits=served.cache_hits,
                cache_misses=served.cache_misses,
                speedup_vs_uncached=(
                    uncached_seconds / elapsed if elapsed > 0 else 0.0
                ),
            )
        )
    return CachedServingTable(
        rows=tuple(rows),
        num_queries=len(queries),
        uncached_seconds=uncached_seconds,
    )


def run_budget_sweep_experiment(
    network: RoadNetwork,
    combiner: CostCombiner,
    workload: dict[DistanceBand, list[BandedQuery]],
    *,
    factors: Sequence[float] = (1.1, 1.3, 1.6, 2.0),
    engine: RoutingEngine | None = None,
) -> BudgetSweepTable:
    """Answer every workload query over a budget-factor vector at once.

    Each query's budget vector is ``ceil(factor * optimistic_ticks)`` per
    factor, served by one ``multi_budget`` search; probabilities are read
    back per factor (factors that collapse onto the same tick budget share
    one answer).
    """
    factors = tuple(factors)
    if not factors or any(f <= 1.0 for f in factors):
        raise ValueError("budget factors must all exceed 1")
    if engine is None:
        engine = RoutingEngine(network, combiner)
    else:
        require_matching_engine(engine, network, combiner)
    rows = []
    for band, members in workload.items():
        sums = [0.0] * len(factors)
        for banded in members:
            per_factor = [
                max(1, int(math.ceil(factor * banded.optimistic_ticks)))
                for factor in factors
            ]
            answer = engine.route_multi_budget(
                banded.query.source, banded.query.target, normalize_budgets(per_factor)
            )
            for i, budget in enumerate(per_factor):
                sums[i] += answer.best_for(budget).probability
        rows.append(
            BudgetSweepRow(
                band=band,
                factors=factors,
                mean_probabilities=tuple(s / len(members) for s in sums),
                num_queries=len(members),
            )
        )
    return BudgetSweepTable(rows=tuple(rows))
