"""Experiment harness regenerating every table/figure of the paper.

Presets, distance-banded workloads, the quality/efficiency/model-KL/
dependence experiments and the shared orchestration runner.
"""

from .config import PRESETS, DistanceBand, ExperimentPreset, get_preset
from .dependence import DependenceResult, run_dependence_experiment
from .efficiency import EfficiencyRow, EfficiencyTable, run_efficiency_experiment
from .model_eval import ModelEvaluation, evaluate_model
from .quality import QualityCell, QualityRow, QualityTable, run_quality_experiment
from .runner import ReproductionRunner, get_runner
from .tables import format_percent, format_seconds, render_table
from .throughput import (
    BudgetSweepRow,
    BudgetSweepTable,
    CachedServingRow,
    CachedServingTable,
    ThroughputRow,
    ThroughputTable,
    run_budget_sweep_experiment,
    run_cached_serving_experiment,
    run_throughput_experiment,
)
from .workloads import BandedQuery, WorkloadGenerator

__all__ = [
    "BandedQuery",
    "BudgetSweepRow",
    "BudgetSweepTable",
    "CachedServingRow",
    "CachedServingTable",
    "DependenceResult",
    "DistanceBand",
    "EfficiencyRow",
    "EfficiencyTable",
    "ExperimentPreset",
    "ModelEvaluation",
    "PRESETS",
    "QualityCell",
    "QualityRow",
    "QualityTable",
    "ReproductionRunner",
    "ThroughputRow",
    "ThroughputTable",
    "WorkloadGenerator",
    "evaluate_model",
    "format_percent",
    "format_seconds",
    "get_preset",
    "get_runner",
    "render_table",
    "run_budget_sweep_experiment",
    "run_cached_serving_experiment",
    "run_dependence_experiment",
    "run_efficiency_experiment",
    "run_quality_experiment",
    "run_throughput_experiment",
]
