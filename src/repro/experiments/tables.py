"""Plain-text table rendering for experiment output.

Every bench prints its result through this renderer so the regenerated
tables visually match the paper's row/column layout.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "format_percent", "format_seconds"]


def format_percent(value: float, *, digits: int = 0) -> str:
    """``0.53 -> '53%'`` (the quality table's unit)."""
    return f"{100.0 * value:.{digits}f}%"


def format_seconds(value: float, *, digits: int = 2) -> str:
    """Seconds with fixed decimals (the efficiency table's unit)."""
    return f"{value:.{digits}f}"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    The first column is left-aligned (row labels), the rest right-aligned
    (numbers), matching the paper's table style.
    """
    cells = [[str(c) for c in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in cells)) if cells else len(str(headers[i]))
        for i in range(len(headers))
    ]

    def fmt(row: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(row):
            parts.append(cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i]))
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt([str(h) for h in headers]))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)
