"""E4 — model evaluation (train 4000 / test 1000 pairs, KL-divergence).

Thin wrapper exposing the training pipeline's held-out report as a rendered
table, the per-method KL the paper measures "between the output and ground
truth trajectories".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import TrainedHybrid
from .tables import format_percent, render_table

__all__ = ["ModelEvaluation", "evaluate_model"]


@dataclass(frozen=True)
class ModelEvaluation:
    """KL of each combiner on held-out pairs + classifier quality."""

    num_train_pairs: int
    num_test_pairs: int
    kl_convolution: float
    kl_estimation: float
    kl_hybrid: float
    classifier_accuracy: float
    estimation_fraction: float
    hybrid_improvement: float

    def render(self) -> str:
        headers = ["Method", "Mean KL"]
        rows = [
            ["Convolution", f"{self.kl_convolution:.4f}"],
            ["Estimation", f"{self.kl_estimation:.4f}"],
            ["Hybrid", f"{self.kl_hybrid:.4f}"],
        ]
        table = render_table(
            headers,
            rows,
            title=(
                f"Model evaluation ({self.num_train_pairs} train / "
                f"{self.num_test_pairs} test pairs)"
            ),
        )
        extra = (
            f"classifier accuracy: {format_percent(self.classifier_accuracy, digits=1)}; "
            f"estimation used on {format_percent(self.estimation_fraction, digits=1)} of pairs; "
            f"hybrid KL improvement over convolution: "
            f"{format_percent(self.hybrid_improvement, digits=1)}"
        )
        return f"{table}\n{extra}"


def evaluate_model(trained: TrainedHybrid) -> ModelEvaluation:
    """Project the pipeline's report into the experiment artefact."""
    report = trained.report
    return ModelEvaluation(
        num_train_pairs=report.num_train_pairs,
        num_test_pairs=report.num_test_pairs,
        kl_convolution=report.kl_convolution,
        kl_estimation=report.kl_estimation,
        kl_hybrid=report.kl_hybrid,
        classifier_accuracy=report.classifier_accuracy,
        estimation_fraction=report.estimation_fraction,
        hybrid_improvement=report.improvement_over_convolution(),
    )
