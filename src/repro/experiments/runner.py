"""Experiment orchestration: build once, run every table.

:class:`ReproductionRunner` assembles the full stack for a preset — network,
ground-truth traffic model, trajectory corpus, trained hybrid — lazily and
exactly once, then exposes one method per paper artefact.  Benches and
examples share runners through :func:`get_runner` so a pytest-benchmark
session pays the corpus/training cost once.
"""

from __future__ import annotations

from ..core import TrainedHybrid, train_hybrid
from ..network import RoadNetwork, denmark_like_network
from ..routing import RoutingEngine
from ..trajectories import (
    CongestionModel,
    TrajectoryStore,
    TripConfig,
    TripGenerator,
)
from .config import DistanceBand, ExperimentPreset, get_preset
from .dependence import DependenceResult, run_dependence_experiment
from .efficiency import EfficiencyTable, run_efficiency_experiment
from .model_eval import ModelEvaluation, evaluate_model
from .quality import QualityTable, run_quality_experiment
from .throughput import (
    BudgetSweepTable,
    CachedServingTable,
    ThroughputTable,
    run_budget_sweep_experiment,
    run_cached_serving_experiment,
    run_throughput_experiment,
)
from .workloads import BandedQuery, WorkloadGenerator

__all__ = ["ReproductionRunner", "get_runner"]

_RUNNER_CACHE: dict[str, "ReproductionRunner"] = {}


class ReproductionRunner:
    """Lazily-built shared state for one preset's experiments."""

    def __init__(self, preset: ExperimentPreset) -> None:
        self.preset = preset
        self._network: RoadNetwork | None = None
        self._model: CongestionModel | None = None
        self._store: TrajectoryStore | None = None
        self._trained: TrainedHybrid | None = None
        self._workload: dict[DistanceBand, list[BandedQuery]] | None = None
        self._engines: dict[str, RoutingEngine] = {}

    # ------------------------------------------------------------------
    # Lazy construction
    # ------------------------------------------------------------------

    @property
    def network(self) -> RoadNetwork:
        if self._network is None:
            preset = self.preset
            self._network = denmark_like_network(
                num_towns=preset.num_towns,
                town_rows=preset.town_rows,
                town_cols=preset.town_cols,
                intercity_distance=preset.intercity_distance,
                seed=preset.seed,
            )
        return self._network

    @property
    def traffic_model(self) -> CongestionModel:
        if self._model is None:
            self._model = CongestionModel(
                self.network, self.preset.congestion, seed=self.preset.seed
            )
        return self._model

    @property
    def store(self) -> TrajectoryStore:
        if self._store is None:
            generator = TripGenerator(
                self.network,
                self.traffic_model,
                config=TripConfig(max_edges=self.preset.max_trip_edges),
                seed=self.preset.seed,
            )
            store = TrajectoryStore()
            store.add_all(generator.generate(self.preset.num_trips))
            self._store = store
        return self._store

    @property
    def trained(self) -> TrainedHybrid:
        if self._trained is None:
            self._trained = train_hybrid(
                self.network,
                self.store,
                self.preset.training,
                traffic_model=self.traffic_model,
            )
        return self._trained

    @property
    def workload(self) -> dict[DistanceBand, list[BandedQuery]]:
        if self._workload is None:
            generator = WorkloadGenerator(
                self.network,
                self.trained.costs,
                budget_factor=self.preset.budget_factor,
                seed=self.preset.seed + 1,
            )
            self._workload = generator.generate(
                self.preset.bands, self.preset.queries_per_band
            )
        return self._workload

    def engine(self, model: str = "hybrid") -> RoutingEngine:
        """The preset's shared :class:`RoutingEngine` for ``model``.

        ``model`` is ``"hybrid"`` or ``"convolution"``.  Engines are cached
        per model so every experiment, bench and example run through the
        same facade and share its heuristic/CDF caches.
        """
        engine = self._engines.get(model)
        if engine is None:
            if model == "hybrid":
                combiner = self.trained.hybrid_model()
            elif model == "convolution":
                combiner = self.trained.convolution_model()
            else:
                raise KeyError(f"unknown engine model {model!r}")
            engine = RoutingEngine(self.network, combiner)
            self._engines[model] = engine
        return engine

    # ------------------------------------------------------------------
    # Experiments (one per paper artefact)
    # ------------------------------------------------------------------

    def run_model_evaluation(self) -> ModelEvaluation:
        """E4: held-out KL of convolution / estimation / hybrid."""
        return evaluate_model(self.trained)

    def run_dependence(self) -> DependenceResult:
        """E3: fraction of observed edge pairs that are dependent."""
        return run_dependence_experiment(
            self.store,
            self.traffic_model,
            min_samples=self.preset.training.min_pair_samples,
        )

    def run_quality(self) -> QualityTable:
        """E5: the Quality table (P∞ and anytime columns)."""
        hybrid_engine = self.engine("hybrid")
        convolution_engine = self.engine("convolution")
        return run_quality_experiment(
            self.network,
            hybrid_engine.combiner,
            convolution_engine.combiner,
            self.traffic_model,
            self.workload,
            anytime_limits=self.preset.anytime_limits,
            hybrid_engine=hybrid_engine,
            convolution_engine=convolution_engine,
        )

    def run_efficiency(self) -> EfficiencyTable:
        """E6: mean PBR runtime per distance band."""
        engine = self.engine("hybrid")
        return run_efficiency_experiment(
            self.network, engine.combiner, self.workload, engine=engine
        )

    def run_throughput(
        self, *, workers: tuple[int, ...] = (1, 2, 4), model: str = "convolution"
    ) -> ThroughputTable:
        """Batch serving: the whole workload through ``route_many`` per worker count."""
        engine = self.engine(model)
        return run_throughput_experiment(
            self.network, engine.combiner, self.workload, workers=workers, engine=engine
        )

    def run_budget_sweep(
        self,
        *,
        factors: tuple[float, ...] = (1.1, 1.3, 1.6, 2.0),
        model: str = "convolution",
    ) -> BudgetSweepTable:
        """Budget-vs-reliability sweep via one multi-budget search per query."""
        engine = self.engine(model)
        return run_budget_sweep_experiment(
            self.network, engine.combiner, self.workload, factors=factors, engine=engine
        )

    def run_cached_serving(
        self, *, passes: int = 3, model: str = "convolution"
    ) -> CachedServingTable:
        """Repeated-OD serving through the result-cached RoutingService."""
        engine = self.engine(model)
        return run_cached_serving_experiment(
            self.network, engine.combiner, self.workload, passes=passes, engine=engine
        )


def get_runner(preset_name: str) -> ReproductionRunner:
    """Shared runner per preset (corpus and training built once)."""
    runner = _RUNNER_CACHE.get(preset_name)
    if runner is None:
        runner = ReproductionRunner(get_preset(preset_name))
        _RUNNER_CACHE[preset_name] = runner
    return runner
