"""E3 — the dependence-ratio statistic.

The paper: "Approximately 75 % of all edge pairs with data are dependent."
We measure the same ratio on the synthetic corpus with a chi-square
independence test per pair and also report the generative model's true
dependent-intersection fraction for calibration.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..trajectories import CongestionModel, TrajectoryStore, dependence_report
from .tables import format_percent, render_table

__all__ = ["DependenceResult", "run_dependence_experiment"]


@dataclass(frozen=True)
class DependenceResult:
    """Measured vs generative dependence ratios."""

    measured_fraction: float
    num_pairs_tested: int
    true_vertex_fraction: float
    alpha: float
    min_samples: int

    def render(self) -> str:
        rows = [
            ["Measured dependent pairs", format_percent(self.measured_fraction, digits=1)],
            ["Generative dependent intersections", format_percent(self.true_vertex_fraction, digits=1)],
            ["Pairs tested", str(self.num_pairs_tested)],
        ]
        return render_table(
            ["Statistic", "Value"],
            rows,
            title=f"Edge-pair dependence (chi-square, alpha={self.alpha:g})",
        )


def run_dependence_experiment(
    store: TrajectoryStore,
    model: CongestionModel,
    *,
    min_samples: int = 30,
    alpha: float = 0.05,
) -> DependenceResult:
    """Test every sufficiently observed pair for dependence."""
    report = dependence_report(store, min_samples=min_samples, alpha=alpha)
    return DependenceResult(
        measured_fraction=report.dependent_fraction,
        num_pairs_tested=report.num_pairs_tested,
        true_vertex_fraction=model.dependent_vertex_fraction(),
        alpha=alpha,
        min_samples=min_samples,
    )
