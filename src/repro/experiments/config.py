"""Experiment presets: one place defining every reproduction run's scale.

The paper's testbed is the full Danish road network with a national GPS
corpus; our presets re-create its structure at laptop scale (see DESIGN.md's
substitution table).  ``small`` keeps CI fast, ``medium`` is the default for
the reported numbers in EXPERIMENTS.md, ``large`` stresses the search.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import ClassifierConfig, EstimatorConfig, FeatureConfig, TrainingConfig
from ..ml import MlpConfig
from ..trajectories import STRUCTURED_CONFIG, CongestionConfig

__all__ = ["DistanceBand", "ExperimentPreset", "PRESETS", "get_preset"]


@dataclass(frozen=True)
class DistanceBand:
    """One of the paper's query distance categories, in kilometres."""

    low_km: float
    high_km: float

    def __post_init__(self) -> None:
        if not 0 <= self.low_km < self.high_km:
            raise ValueError("band must satisfy 0 <= low < high")

    @property
    def label(self) -> str:
        return f"[{self.low_km:g}, {self.high_km:g})"

    def contains(self, distance_km: float) -> bool:
        return self.low_km <= distance_km < self.high_km


#: The paper's three distance categories.
PAPER_BANDS = (
    DistanceBand(0.0, 1.0),
    DistanceBand(1.0, 5.0),
    DistanceBand(5.0, 10.0),
)


@dataclass(frozen=True)
class ExperimentPreset:
    """Everything an experiment run needs, deterministically seeded."""

    name: str
    # network scale (denmark-like generator)
    num_towns: int
    town_rows: int
    town_cols: int
    intercity_distance: float
    # corpus
    num_trips: int
    max_trip_edges: int
    congestion: CongestionConfig = STRUCTURED_CONFIG
    # training
    training: TrainingConfig = field(default_factory=TrainingConfig)
    # workload
    bands: tuple[DistanceBand, ...] = PAPER_BANDS
    queries_per_band: int = 20
    budget_factor: float = 1.5
    # anytime limits in seconds (the paper's P1/P5/P10, scaled to our testbed)
    anytime_limits: tuple[float, ...] = (0.05, 0.25, 1.0)
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_trips < 1:
            raise ValueError("num_trips must be >= 1")
        if self.queries_per_band < 1:
            raise ValueError("queries_per_band must be >= 1")
        if self.budget_factor <= 1.0:
            raise ValueError("budget_factor must exceed 1 (budgets below the "
                             "minimum travel time make every probability 0)")


def _training(num_train: int, num_test: int, *, min_pair_samples: int, epochs: int) -> TrainingConfig:
    return TrainingConfig(
        num_train_pairs=num_train,
        num_test_pairs=num_test,
        min_pair_samples=min_pair_samples,
        min_edge_samples=10,
        num_virtual_examples=max(600, num_train // 2),
        virtual_max_prepath=45,
        refinement_rounds=2,
        estimator=EstimatorConfig(
            num_bins=48,
            mlp=MlpConfig(hidden_sizes=(64, 64), max_epochs=epochs, seed=0),
        ),
        classifier=ClassifierConfig(backend="logistic"),
        features=FeatureConfig(profile_bins=16),
        seed=0,
    )


PRESETS: dict[str, ExperimentPreset] = {
    # CI-scale: one town, small corpus, two bands reachable.
    "small": ExperimentPreset(
        name="small",
        num_towns=1,
        town_rows=8,
        town_cols=8,
        intercity_distance=0.0,
        num_trips=15000,
        max_trip_edges=40,
        training=_training(400, 100, min_pair_samples=60, epochs=100),
        bands=(DistanceBand(0.0, 1.0), DistanceBand(1.0, 5.0)),
        queries_per_band=8,
        anytime_limits=(0.01, 0.05, 0.2),
    ),
    # Default reproduction scale: 4 towns joined by motorways, all 3 bands.
    "medium": ExperimentPreset(
        name="medium",
        num_towns=4,
        town_rows=9,
        town_cols=9,
        intercity_distance=3500.0,
        num_trips=20000,
        max_trip_edges=60,
        training=_training(4000, 1000, min_pair_samples=40, epochs=120),
        queries_per_band=15,
        anytime_limits=(0.05, 0.25, 1.0),
    ),
    # Stress scale for efficiency curves.
    "large": ExperimentPreset(
        name="large",
        num_towns=6,
        town_rows=12,
        town_cols=12,
        intercity_distance=4000.0,
        num_trips=40000,
        max_trip_edges=80,
        training=_training(4000, 1000, min_pair_samples=40, epochs=120),
        queries_per_band=20,
        anytime_limits=(0.1, 0.5, 2.0),
    ),
}


def get_preset(name: str) -> ExperimentPreset:
    """Look up a preset by name with a helpful error."""
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; available: {sorted(PRESETS)}"
        ) from None
