"""Query workload generation in the paper's distance bands.

The paper poses routing queries grouped by distance category ([0,1), [1,5),
[5,10) km).  We measure distance as *network* distance (shortest-path metres)
— straight-line distance misclassifies town-to-town queries — and derive each
query's time budget from the optimistic minimum travel time, so budgets are
tight enough that arrival probabilities are informative.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.costs import EdgeCostTable
from ..network import RoadNetwork
from ..network.paths import dijkstra, reverse_dijkstra
from ..routing import RoutingQuery
from .config import DistanceBand

__all__ = ["BandedQuery", "WorkloadGenerator"]


@dataclass(frozen=True)
class BandedQuery:
    """A routing query with the band and measured distance that produced it."""

    query: RoutingQuery
    band: DistanceBand
    network_distance_km: float
    optimistic_ticks: int


class WorkloadGenerator:
    """Samples queries whose network distance falls in a requested band."""

    def __init__(
        self,
        network: RoadNetwork,
        costs: EdgeCostTable,
        *,
        budget_factor: float = 1.3,
        seed: int = 0,
    ) -> None:
        if budget_factor <= 1.0:
            raise ValueError("budget_factor must exceed 1")
        self.network = network
        self.costs = costs
        self.budget_factor = budget_factor
        self._rng = np.random.default_rng(seed)
        self._vertex_ids = sorted(network.vertex_ids())

    def _sample_one(self, band: DistanceBand, *, max_attempts: int = 200) -> BandedQuery | None:
        for _ in range(max_attempts):
            source = int(self._rng.choice(self._vertex_ids))
            lengths, _ = dijkstra(
                self.network, source, weight=lambda edge: edge.length
            )
            candidates = [
                vertex
                for vertex, metres in lengths.items()
                if vertex != source and band.contains(metres / 1000.0)
            ]
            if not candidates:
                continue
            target = int(self._rng.choice(candidates))
            min_ticks_map = reverse_dijkstra(
                self.network,
                target,
                weight=lambda edge: float(self.costs.min_ticks(edge)),
            )
            optimistic = min_ticks_map.get(source)
            if optimistic is None or optimistic < 1:
                continue
            budget = int(math.ceil(self.budget_factor * optimistic))
            return BandedQuery(
                query=RoutingQuery(source, target, budget=max(budget, 1)),
                band=band,
                network_distance_km=lengths[target] / 1000.0,
                optimistic_ticks=int(optimistic),
            )
        return None

    def generate_band(
        self, band: DistanceBand, count: int, *, max_attempts: int = 200
    ) -> list[BandedQuery]:
        """``count`` queries in one band.

        Raises ``RuntimeError`` when the network simply does not contain OD
        pairs at the requested distance (e.g. a [5,10) km band on a 2 km
        network) — surfacing a mis-scoped preset beats silently thin data.
        """
        out: list[BandedQuery] = []
        failures = 0
        while len(out) < count:
            sample = self._sample_one(band, max_attempts=max_attempts)
            if sample is None:
                failures += 1
                if failures >= 3:
                    raise RuntimeError(
                        f"could not sample queries in band {band.label}; "
                        "network extent is likely too small for this band"
                    )
                continue
            out.append(sample)
        return out

    def generate(
        self, bands: tuple[DistanceBand, ...], count_per_band: int
    ) -> dict[DistanceBand, list[BandedQuery]]:
        """The full experiment workload, band by band."""
        return {band: self.generate_band(band, count_per_band) for band in bands}
