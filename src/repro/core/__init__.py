"""The paper's core contribution: the Hybrid Model.

Distribution-estimation model + dependence classifier + convolution,
arbitrated per intersection; iterative path-cost computation with the
virtual-edge trick; training pipeline and persistence.
"""

from .classifier import ClassifierConfig, DependenceClassifier
from .costs import EdgeCostTable
from .estimator import DistributionEstimator, EstimatorConfig
from .features import FeatureConfig, IntersectionStats, PairFeatureExtractor
from .models import (
    ConvolutionModel,
    CostCombiner,
    EstimationModel,
    HybridModel,
    HybridStats,
)
from .path_cost import PathCostComputer
from .persistence import load_hybrid, save_hybrid
from .training import (
    PairExample,
    TrainedHybrid,
    TrainingConfig,
    TrainingReport,
    train_hybrid,
)

__all__ = [
    "ClassifierConfig",
    "ConvolutionModel",
    "CostCombiner",
    "DependenceClassifier",
    "DistributionEstimator",
    "EdgeCostTable",
    "EstimationModel",
    "EstimatorConfig",
    "FeatureConfig",
    "HybridModel",
    "HybridStats",
    "IntersectionStats",
    "PairExample",
    "PairFeatureExtractor",
    "PathCostComputer",
    "TrainedHybrid",
    "TrainingConfig",
    "TrainingReport",
    "load_hybrid",
    "save_hybrid",
    "train_hybrid",
]
