"""End-to-end training pipeline for the Hybrid Model.

Mirrors the paper's procedure: "The estimation model is trained on 4000 edge
pairs with sufficient data.  An instance of the classifier is initialized for
each estimation model.  Following training, we test the model with a set of
1000 edge pairs, measuring the KL-divergence between the output and ground
truth trajectories."

Pipeline stages:

1. build the edge cost table (per-edge empirical histograms),
2. select edge pairs with sufficient data and split train/test,
3. aggregate per-intersection dependence evidence (historical mutual
   information) from the *training* pairs,
4. train the distribution estimator on (features -> ground-truth delay
   profile),
5. derive outcome-based labels (estimation beats convolution in KL?) and
   train the dependence classifier,
6. evaluate all three combiners (convolution / estimation / hybrid) on the
   held-out pairs, reporting mean KL to ground truth — the paper's metric.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from ..histograms import DiscreteDistribution, JointDistribution, kl_divergence
from ..ml import accuracy
from ..network import EdgePair, RoadNetwork
from ..trajectories import TrajectoryStore
from .classifier import ClassifierConfig, DependenceClassifier
from .costs import EdgeCostTable
from .estimator import DistributionEstimator, EstimatorConfig
from .features import FeatureConfig, IntersectionStats, PairFeatureExtractor
from .models import ConvolutionModel, EstimationModel, HybridModel

__all__ = ["TrainingConfig", "PairExample", "TrainingReport", "TrainedHybrid", "train_hybrid"]


@dataclass(frozen=True)
class TrainingConfig:
    """Pipeline parameters; defaults follow the paper where it gives numbers.

    ``num_virtual_examples`` augments the pair training set with multi-edge
    *virtual-edge* examples (random-walk prefixes of 2..``virtual_max_prepath``
    edges with their exact ground-truth combination targets).  The paper
    trains on edge pairs and then applies the model to virtual edges; without
    seeing any wide pre-path during training the regressor would be asked to
    extrapolate far outside its feature support, so this augmentation is the
    reproduction's way of making the paper's virtual-edge trick operational
    (see DESIGN.md).  Requires passing ``traffic_model`` to
    :func:`train_hybrid`; set to 0 for the strict pairs-only pipeline.
    """

    num_train_pairs: int = 4000
    num_test_pairs: int = 1000
    min_pair_samples: int = 30
    min_edge_samples: int = 10
    resolution: float = 5.0
    num_virtual_examples: int = 0
    virtual_max_prepath: int = 8
    refinement_rounds: int = 0
    estimator: EstimatorConfig = field(default_factory=EstimatorConfig)
    classifier: ClassifierConfig = field(default_factory=ClassifierConfig)
    features: FeatureConfig = field(default_factory=FeatureConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_train_pairs < 1 or self.num_test_pairs < 1:
            raise ValueError("train and test pair counts must be >= 1")
        if self.min_pair_samples < 2:
            raise ValueError("min_pair_samples must be >= 2")
        if self.resolution <= 0:
            raise ValueError("resolution must be positive")
        if self.num_virtual_examples < 0:
            raise ValueError("num_virtual_examples must be >= 0")
        if self.virtual_max_prepath < 2:
            raise ValueError("virtual_max_prepath must be >= 2")
        if self.refinement_rounds < 0:
            raise ValueError("refinement_rounds must be >= 0")
        if self.refinement_rounds > 0 and self.num_virtual_examples == 0:
            raise ValueError("refinement requires num_virtual_examples > 0")


@dataclass(frozen=True)
class PairExample:
    """One training/evaluation example: a consecutive edge pair with data.

    ``label_truth`` optionally carries a lower-noise reference distribution
    (the generative model's exact pair truth) used *only* for deriving
    convolution-vs-estimation labels; estimator targets and held-out KL
    evaluation always use ``truth`` (the empirical corpus histogram, as in
    the paper).
    """

    key: tuple[int, int]
    features: np.ndarray
    target: np.ndarray
    truth: DiscreteDistribution
    pre: DiscreteDistribution
    edge_cost: DiscreteDistribution
    label_truth: DiscreteDistribution | None = None


@dataclass(frozen=True)
class TrainingReport:
    """Paper-style evaluation summary (E4): mean KL to ground truth."""

    num_train_pairs: int
    num_test_pairs: int
    kl_convolution: float
    kl_estimation: float
    kl_hybrid: float
    classifier_accuracy: float
    estimation_fraction: float
    train_label_fraction: float

    def improvement_over_convolution(self) -> float:
        """Relative KL reduction of the hybrid vs. pure convolution."""
        if self.kl_convolution <= 0.0:
            return 0.0
        return 1.0 - self.kl_hybrid / self.kl_convolution


@dataclass
class TrainedHybrid:
    """Everything produced by training, ready for routing."""

    network: RoadNetwork
    costs: EdgeCostTable
    estimator: DistributionEstimator
    classifier: DependenceClassifier
    features: PairFeatureExtractor
    report: TrainingReport

    def hybrid_model(self) -> HybridModel:
        """The paper's combiner."""
        return HybridModel(self.costs, self.estimator, self.classifier, self.features)

    def convolution_model(self) -> ConvolutionModel:
        """The classical baseline over the same cost table."""
        return ConvolutionModel(self.costs)

    def estimation_model(self) -> EstimationModel:
        """Ablation: always estimate."""
        return EstimationModel(self.costs, self.estimator, self.features)


def _collect_examples(
    network: RoadNetwork,
    store: TrajectoryStore,
    costs: EdgeCostTable,
    extractor: PairFeatureExtractor,
    estimator: DistributionEstimator,
    keys: list[tuple[int, int]],
    *,
    min_pair_samples: int,
    traffic_model=None,
) -> list[PairExample]:
    examples = []
    for key in keys:
        first = network.edge(key[0])
        second = network.edge(key[1])
        pre = costs.cost(first)
        edge_cost = costs.cost(second)
        truth = store.pair_total_cost(key, min_samples=min_pair_samples)
        features = extractor.extract(pre, second, edge_cost)
        target = estimator.target_profile(truth, pre, edge_cost)
        label_truth = None
        if traffic_model is not None:
            label_truth = traffic_model.pair_ground_truth(EdgePair(first, second))
        examples.append(
            PairExample(key, features, target, truth, pre, edge_cost, label_truth)
        )
    return examples


def _intersection_stats(
    network: RoadNetwork,
    store: TrajectoryStore,
    keys: list[tuple[int, int]],
    *,
    min_pair_samples: int,
) -> dict[int, IntersectionStats]:
    """Aggregate historical dependence evidence per intersection."""
    mi_values: dict[int, list[float]] = defaultdict(list)
    sample_counts: dict[int, int] = defaultdict(int)
    for key in keys:
        samples = store.pair_samples(key)
        if len(samples) < min_pair_samples:
            continue
        joint = JointDistribution.from_samples(samples)
        vertex = network.edge(key[0]).target
        mi_values[vertex].append(joint.mutual_information())
        sample_counts[vertex] += len(samples)
    return {
        vertex: IntersectionStats(
            mean_mutual_information=float(np.mean(values)),
            num_pairs_observed=len(values),
            num_samples=sample_counts[vertex],
        )
        for vertex, values in mi_values.items()
    }


def _virtual_examples(
    network: RoadNetwork,
    traffic_model,
    costs: EdgeCostTable,
    extractor: PairFeatureExtractor,
    estimator: DistributionEstimator,
    *,
    count: int,
    max_prepath: int,
    rng: np.random.Generator,
    pre_fn=None,
) -> list[PairExample]:
    """Virtual-edge training examples from random walks.

    Each example folds a 2..``max_prepath``-edge prefix into a pre-path
    distribution and targets the exact ground-truth distribution of
    prefix + next edge.  By default the pre-path distribution is the exact
    path distribution (the infinite-data limit of the empirical
    sub-trajectory histograms a real corpus would provide); passing
    ``pre_fn`` substitutes a different pre-path representation — the
    refinement rounds pass the model's *own recursive estimate* so training
    inputs match what the routing recursion will actually feed the model.
    """
    examples: list[PairExample] = []
    num_edges = network.num_edges
    attempts = 0
    while len(examples) < count and attempts < count * 20:
        attempts += 1
        prefix_length = int(rng.integers(2, max_prepath + 1))
        walk = [network.edge(int(rng.integers(0, num_edges)))]
        ok = True
        for _ in range(prefix_length):
            options = [
                edge
                for edge in network.out_edges(walk[-1].target)
                if edge.target != walk[-1].source
            ]
            if not options:
                ok = False
                break
            walk.append(options[int(rng.integers(0, len(options)))])
        if not ok:
            continue
        prefix, next_edge = walk[:-1], walk[-1]
        if pre_fn is None:
            pre = traffic_model.path_distribution(prefix)
        else:
            pre = pre_fn(prefix)
        truth = traffic_model.path_distribution(walk)
        edge_cost = costs.cost(next_edge)
        features = extractor.extract(pre, next_edge, edge_cost)
        target = estimator.target_profile(truth, pre, edge_cost)
        examples.append(
            PairExample(
                key=(prefix[-1].id, next_edge.id),
                features=features,
                target=target,
                truth=truth,
                pre=pre,
                edge_cost=edge_cost,
            )
        )
    return examples


def _labels_for(
    examples: list[PairExample],
    estimator: DistributionEstimator,
    *,
    use_label_truth: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Outcome labels plus the per-method KL arrays used to derive them.

    ``use_label_truth`` selects the exact reference for label derivation
    (training); the held-out evaluation passes ``False`` so reported KL is
    measured against the empirical corpus truth, as the paper does.
    """
    kl_conv = np.empty(len(examples))
    kl_est = np.empty(len(examples))
    features = np.vstack([example.features for example in examples])
    profiles = estimator.predict_profiles(features)
    for i, example in enumerate(examples):
        reference = (
            example.label_truth
            if use_label_truth and example.label_truth is not None
            else example.truth
        )
        conv = example.pre.convolve(example.edge_cost)
        kl_conv[i] = kl_divergence(reference, conv)
        anchor = example.pre.min_value + example.edge_cost.min_value
        width = estimator.bin_width(example.pre, example.edge_cost)
        profile = np.clip(profiles[i], 0.0, None) + 1e-12
        if width > 1:
            profile = np.repeat(profile / width, width)
        est = DiscreteDistribution(anchor, profile)
        kl_est[i] = kl_divergence(reference, est)
    labels = (kl_est < kl_conv).astype(np.int64)
    return labels, kl_conv, kl_est


def train_hybrid(
    network: RoadNetwork,
    store: TrajectoryStore,
    config: TrainingConfig | None = None,
    *,
    traffic_model=None,
) -> TrainedHybrid:
    """Run the full pipeline and return the trained hybrid plus its report.

    Raises ``ValueError`` when the corpus has fewer than two pairs with
    sufficient data (nothing to train or evaluate on).  When fewer than
    ``num_train_pairs + num_test_pairs`` pairs exist, the available pairs are
    split in the same 80/20 proportion the paper's 4000/1000 split uses.

    ``traffic_model`` (a :class:`~repro.trajectories.CongestionModel`) is
    required when ``config.num_virtual_examples > 0``; see
    :class:`TrainingConfig` for the virtual-edge augmentation rationale.
    The held-out evaluation always uses edge pairs only, as in the paper.
    """
    config = config or TrainingConfig()
    if config.num_virtual_examples > 0 and traffic_model is None:
        raise ValueError(
            "num_virtual_examples > 0 requires passing traffic_model"
        )
    costs = EdgeCostTable.from_store(
        network, store, resolution=config.resolution, min_samples=config.min_edge_samples
    )
    keys = store.pair_keys_with_data(min_samples=config.min_pair_samples)
    if len(keys) < 2:
        raise ValueError(
            f"corpus has {len(keys)} pairs with >= {config.min_pair_samples} samples; "
            "need at least 2 (generate more trips or lower min_pair_samples)"
        )
    rng = np.random.default_rng(config.seed)
    order = rng.permutation(len(keys))
    wanted = config.num_train_pairs + config.num_test_pairs
    if len(keys) >= wanted:
        selected = [keys[i] for i in order[:wanted]]
        num_train = config.num_train_pairs
    else:
        selected = [keys[i] for i in order]
        train_share = config.num_train_pairs / wanted
        num_train = min(max(1, int(round(len(selected) * train_share))), len(selected) - 1)
    train_keys = selected[:num_train]
    test_keys = selected[num_train:]

    extractor = PairFeatureExtractor(network, config=config.features)
    extractor.set_intersection_stats(
        _intersection_stats(
            network, store, train_keys, min_pair_samples=config.min_pair_samples
        )
    )
    estimator = DistributionEstimator(config.estimator)

    train_examples = _collect_examples(
        network, store, costs, extractor, estimator, train_keys,
        min_pair_samples=config.min_pair_samples,
        traffic_model=traffic_model,
    )
    test_examples = _collect_examples(
        network, store, costs, extractor, estimator, test_keys,
        min_pair_samples=config.min_pair_samples,
    )

    if config.num_virtual_examples > 0:
        train_examples = train_examples + _virtual_examples(
            network,
            traffic_model,
            costs,
            extractor,
            estimator,
            count=config.num_virtual_examples,
            max_prepath=config.virtual_max_prepath,
            rng=rng,
        )

    estimator.fit(
        np.vstack([example.features for example in train_examples]),
        np.vstack([example.target for example in train_examples]),
    )

    train_labels, _, _ = _labels_for(train_examples, estimator)
    classifier = DependenceClassifier(config.classifier)
    classifier.fit(
        np.vstack([example.features for example in train_examples]), train_labels
    )

    # Refinement: regenerate virtual examples whose pre-path input is the
    # model's own recursive estimate (closing the train/inference gap of the
    # virtual-edge trick), then retrain estimator and classifier.
    for _ in range(config.refinement_rounds):
        from .path_cost import PathCostComputer

        recursion = PathCostComputer(
            HybridModel(costs, estimator, classifier, extractor)
        )
        recursive_examples = _virtual_examples(
            network,
            traffic_model,
            costs,
            extractor,
            estimator,
            count=config.num_virtual_examples,
            max_prepath=config.virtual_max_prepath,
            rng=rng,
            pre_fn=recursion.cost,
        )
        train_examples = train_examples + recursive_examples
        estimator = DistributionEstimator(config.estimator)
        estimator.fit(
            np.vstack([example.features for example in train_examples]),
            np.vstack([example.target for example in train_examples]),
        )
        train_labels, _, _ = _labels_for(train_examples, estimator)
        classifier = DependenceClassifier(config.classifier)
        classifier.fit(
            np.vstack([example.features for example in train_examples]),
            train_labels,
        )

    test_labels, kl_conv, kl_est = _labels_for(
        test_examples, estimator, use_label_truth=False
    )
    test_features = np.vstack([example.features for example in test_examples])
    decisions = classifier.decide_batch(test_features)
    kl_hybrid = np.where(decisions, kl_est, kl_conv)

    report = TrainingReport(
        num_train_pairs=len(train_examples),
        num_test_pairs=len(test_examples),
        kl_convolution=float(kl_conv.mean()),
        kl_estimation=float(kl_est.mean()),
        kl_hybrid=float(kl_hybrid.mean()),
        classifier_accuracy=accuracy(test_labels, decisions.astype(np.int64)),
        estimation_fraction=float(decisions.mean()),
        train_label_fraction=float(train_labels.mean()),
    )
    return TrainedHybrid(
        network=network,
        costs=costs,
        estimator=estimator,
        classifier=classifier,
        features=extractor,
        report=report,
    )
