"""Edge cost tables: the per-edge travel-time histograms routing consumes.

The paper's road-network model annotates each edge with a histogram learned
from trajectories.  :class:`EdgeCostTable` holds those histograms, with a
free-flow fallback for edges the corpus never covered (a real deployment
routes over the full network, not just the observed edges).
"""

from __future__ import annotations

import math
import numbers
from typing import Any, Mapping

from ..histograms import DiscreteDistribution
from ..network import Edge, RoadNetwork
from ..trajectories import TrajectoryStore

__all__ = ["EdgeCostTable"]


class EdgeCostTable:
    """Per-edge marginal cost histograms with free-flow fallback.

    Parameters
    ----------
    network:
        The covered road network.
    resolution:
        Seconds per grid tick (must match the corpus the histograms came
        from).
    """

    def __init__(self, network: RoadNetwork, *, resolution: float) -> None:
        if resolution <= 0:
            raise ValueError("resolution must be positive")
        self.network = network
        self.resolution = float(resolution)
        # The (table, version) pair lives in ONE reference so concurrent
        # readers can never observe a torn pair — new histograms tagged with
        # the old version, or a half-applied batch.  `apply_deltas` publishes
        # a brand-new pair in a single assignment (atomic under the GIL);
        # readers that need coherence snapshot the cell once via `versioned`.
        self._versioned: tuple[dict[int, DiscreteDistribution], int] = ({}, 0)
        self._free_flow: dict[int, DiscreteDistribution] = {}

    @property
    def _table(self) -> dict[int, DiscreteDistribution]:
        return self._versioned[0]

    @property
    def version(self) -> int:
        """Mutation counter; bumped by :meth:`set_cost` / :meth:`apply_deltas`.

        Consumers that memoise derived state (heuristic tables, combiner edge
        caches, the serving layer's result cache) key on it so edits
        invalidate them without any registration protocol.
        """
        return self._versioned[1]

    @property
    def versioned(self) -> tuple[Mapping[int, DiscreteDistribution], int]:
        """One coherent ``(histograms, version)`` snapshot of the table.

        Reading :attr:`version` and then the costs as two steps can tear
        around a concurrent :meth:`apply_deltas`; this property reads the
        single publication cell once, so the pair is always consistent.
        Treat the mapping as read-only.
        """
        return self._versioned

    @classmethod
    def from_store(
        cls,
        network: RoadNetwork,
        store: TrajectoryStore,
        *,
        resolution: float,
        min_samples: int = 10,
    ) -> "EdgeCostTable":
        """Build from empirical per-edge histograms (>= ``min_samples``)."""
        table = cls(network, resolution=resolution)
        for edge_id in store.edge_ids_with_data(min_samples=min_samples):
            table.set_cost(edge_id, store.edge_histogram(edge_id))
        return table

    def _check_edge_id(self, edge_id: int) -> None:
        """Reject unknown edge ids (numpy integers are fine).

        ``network.edge`` indexes a list, so a bare call would *accept*
        negative ids (Python indexing wraps them onto real edges) and a
        feed typo would silently install histograms under keys routing
        never reads.
        """
        if (
            isinstance(edge_id, bool)
            or not isinstance(edge_id, numbers.Integral)
            or edge_id < 0
        ):
            raise IndexError(f"unknown edge id {edge_id!r}")
        self.network.edge(int(edge_id))  # raises IndexError beyond the edge list

    def set_cost(self, edge_id: int, distribution: DiscreteDistribution) -> None:
        """Install or overwrite one edge's histogram.

        Construction-time API: it mutates the live table in place (no
        copy-on-write), so it is *not* safe against concurrent readers.
        Live serving updates go through :meth:`apply_deltas`.
        """
        self._check_edge_id(edge_id)
        table, version = self._versioned
        table[edge_id] = distribution
        self._versioned = (table, version + 1)

    def apply_deltas(self, updates: Mapping[int, DiscreteDistribution]) -> int:
        """Install a batch of edge histograms under a *single* version bump.

        This is the hot-swap entry point for live cost feeds (see
        :mod:`repro.service`): consumers that memoise derived state key on
        :attr:`version`, so one bump per feed batch invalidates them exactly
        once instead of once per edge.  The batch is validated up front and
        applied atomically from the caller's perspective — either every edge
        in ``updates`` is installed and the version moves by one, or the
        table is untouched (unknown edges / non-distribution values raise
        before anything is written).  The batch is also atomic against
        concurrent *readers*: the new histograms and the new version are
        published together as one new ``(table, version)`` cell, so a reader
        can never see updated costs under the old version (it would cache a
        fresh answer under a stale key) nor a partially-installed batch.
        This is copy-on-write — the whole mapping is copied per batch — which
        is what lets readers holding the old cell keep an immutable snapshot;
        the cost is O(observed edges) per *feed batch* (not per edge), paid
        off the request path while the serving layer's write lock already
        holds readers out.  Returns the new version.
        """
        if not updates:
            raise ValueError("apply_deltas requires at least one edge update")
        for edge_id, distribution in updates.items():
            self._check_edge_id(edge_id)
            if not isinstance(distribution, DiscreteDistribution):
                raise TypeError(
                    f"edge {edge_id}: cost update must be a "
                    f"DiscreteDistribution, got {type(distribution).__name__}"
                )
        table, version = self._versioned
        self._versioned = ({**table, **updates}, version + 1)
        return self.version

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready snapshot of the observed histograms *and* the version.

        This is the serving layer's durable-state format
        (:meth:`repro.service.RoutingService.snapshot`): the version is
        serialised so a restored table reproduces the exact cache keys and
        answer tags of the table it was dumped from — a successor service
        restored from the snapshot is bit-identical, not merely equivalent.
        The table and version are read from the single publication cell
        once, so the pair is coherent even against a concurrent
        :meth:`apply_deltas`.
        """
        table, version = self._versioned
        return {
            "kind": "cost_table",
            "resolution": self.resolution,
            "version": version,
            "costs": {
                str(edge_id): {
                    "offset": dist.offset,
                    "probs": [float(p) for p in dist.probs],
                }
                for edge_id, dist in sorted(table.items())
            },
        }

    @classmethod
    def from_dict(
        cls, network: RoadNetwork, data: Mapping[str, Any]
    ) -> "EdgeCostTable":
        """Rebuild a table dumped by :meth:`to_dict` onto ``network``.

        The histograms are installed verbatim (no renormalisation — floats
        round-trip exactly through JSON) and the dumped version is restored
        as-is, unlike :meth:`copy` which deliberately restarts at zero.
        """
        if data.get("kind") != "cost_table":
            raise ValueError(
                f"expected a cost_table document, got kind={data.get('kind')!r}"
            )
        table = cls(network, resolution=float(data["resolution"]))
        costs: dict[int, DiscreteDistribution] = {}
        for raw_id, payload in data["costs"].items():
            edge_id = int(raw_id)
            table._check_edge_id(edge_id)
            costs[edge_id] = DiscreteDistribution(
                int(payload["offset"]),
                [float(p) for p in payload["probs"]],
                normalize=False,
            )
        version = data["version"]
        if isinstance(version, bool) or not isinstance(version, numbers.Integral):
            raise ValueError(f"cost_table version must be an integer, got {version!r}")
        table._versioned = (costs, int(version))
        return table

    def restore(self, data: Mapping[str, Any]) -> int:
        """Atomically replace this table's contents with a :meth:`to_dict` dump.

        The in-place counterpart of :meth:`from_dict` for live tables a
        service engine already wraps: the dumped histograms *and version*
        are validated off to the side and then published as one new
        ``(table, version)`` cell — concurrent readers see either the old
        table or the restored one, never a mixture.  The dump's resolution
        must match this table's.  Returns the restored version.
        """
        if float(data["resolution"]) != self.resolution:
            raise ValueError(
                f"cost_table dump has resolution {data['resolution']!r}, "
                f"this table serves {self.resolution!r}"
            )
        rebuilt = EdgeCostTable.from_dict(self.network, data)
        self._versioned = rebuilt._versioned
        return self.version

    def copy(self) -> "EdgeCostTable":
        """An independent table with the same observed histograms.

        Distributions are immutable and therefore shared; the copy starts
        its own mutation version (and free-flow memo), so edits to either
        table never touch the other's consumers or cache keys.  This is the
        building block for hot-swap comparisons — serve on one table,
        verify against a cold copy with the same deltas applied.
        """
        clone = EdgeCostTable(self.network, resolution=self.resolution)
        clone._versioned = (dict(self._table), 0)
        return clone

    @classmethod
    def interpolate(
        cls, left: "EdgeCostTable", right: "EdgeCostTable", weight: float
    ) -> "EdgeCostTable":
        """A table blending two anchors: ``(1 - weight)·left + weight·right``.

        This is the temporal-profile building block: a departure inside a
        transition band between two time-of-day slices routes over a
        *mixture* of the adjacent anchor histograms rather than jumping
        discontinuously at the boundary second.  Only edges observed in at
        least one anchor get a mixed histogram — an edge unobserved in both
        falls back to the same free-flow point mass in every table, so
        mixing it would change nothing but memory.  The blend is installed
        through one :meth:`apply_deltas` batch, so the result starts at
        version 1 like a freshly built slice table.
        """
        from ..histograms.operations import mixture

        if left.network is not right.network:
            raise ValueError("anchor tables must share one network")
        if left.resolution != right.resolution:
            raise ValueError(
                f"anchor resolutions differ: {left.resolution} vs {right.resolution}"
            )
        w = float(weight)
        if not 0.0 <= w <= 1.0 or not math.isfinite(w):
            raise ValueError(f"interpolation weight must be in [0, 1], got {weight!r}")
        table = cls(left.network, resolution=left.resolution)
        edge_ids = set(left._table) | set(right._table)
        if not edge_ids:
            return table
        blended: dict[int, DiscreteDistribution] = {}
        for edge_id in edge_ids:
            edge = left.network.edge(edge_id)
            a, b = left.cost(edge), right.cost(edge)
            if a is b:
                blended[edge_id] = a
            else:
                blended[edge_id] = mixture((a, b), (1.0 - w, w))
        table.apply_deltas(blended)
        return table

    def with_delays(
        self, delays: Mapping[int, DiscreteDistribution]
    ) -> "EdgeCostTable":
        """A new table whose listed edges carry an extra additive delay.

        Each ``delays[edge_id]`` distribution is convolved onto the edge's
        current cost (observed or free-flow fallback) — the shape signal
        time plans need: the edge's travel time plus an independent wait at
        the downstream intersection.  Delay supports must be non-negative
        (a "delay" that sped an edge up would break the optimistic
        heuristic's lower bounds).  The result is an independent table at
        version 1; ``self`` is untouched.
        """
        table = EdgeCostTable(self.network, resolution=self.resolution)
        table._versioned = (dict(self._table), 0)
        if not delays:
            table._versioned = (table._table, 1)
            return table
        delayed: dict[int, DiscreteDistribution] = {}
        for edge_id, delay in delays.items():
            self._check_edge_id(edge_id)
            if not isinstance(delay, DiscreteDistribution):
                raise TypeError(
                    f"edge {edge_id}: delay must be a DiscreteDistribution, "
                    f"got {type(delay).__name__}"
                )
            if delay.min_value < 0:
                raise ValueError(
                    f"edge {edge_id}: delay support must be non-negative, "
                    f"min is {delay.min_value}"
                )
            delayed[int(edge_id)] = self.cost(self.network.edge(int(edge_id))).convolve(
                delay
            )
        table.apply_deltas(delayed)
        return table

    def has_observed_cost(self, edge_id: int) -> bool:
        """True when the edge has a corpus-derived histogram."""
        return edge_id in self._table

    @property
    def num_observed(self) -> int:
        return len(self._table)

    def free_flow_cost(self, edge: Edge) -> DiscreteDistribution:
        """Deterministic fallback: a point mass at the free-flow tick count.

        Memoised per edge — distributions are immutable and the fallback
        depends only on static edge attributes, so routing never rebuilds
        the same point mass twice.
        """
        cached = self._free_flow.get(edge.id)
        if cached is None:
            ticks = max(1, int(round(edge.free_flow_time / self.resolution)))
            cached = DiscreteDistribution.point(ticks)
            self._free_flow[edge.id] = cached
        return cached

    def cost(self, edge: Edge) -> DiscreteDistribution:
        """The edge's marginal cost histogram (observed or fallback)."""
        observed = self._table.get(edge.id)
        if observed is not None:
            return observed
        return self.free_flow_cost(edge)

    def min_ticks(self, edge: Edge) -> int:
        """Minimum possible travel time of the edge in ticks.

        This feeds the optimistic remaining-cost heuristic (pruning rule (a)):
        the heuristic must lower-bound any achievable cost, so it uses the
        histogram's minimum when observed and the free-flow time otherwise.
        """
        return self.cost(edge).min_value
