"""The distribution estimation model.

Component (i) of the paper's Hybrid Model: a learned regressor that, given a
(pre-path, next-edge) feature vector, outputs the *dependent* cost
distribution of traversing both — the quantity convolution gets wrong at
spatially dependent intersections.

The output is a probability vector over ``num_bins`` delay bins anchored at
the optimistic minimum ``pre.min + edge.min`` (the minimum is identical under
any dependence structure because the marginals are fixed), which makes the
representation translation-invariant: the model learns distribution *shapes*,
and the anchor restores absolute travel times at prediction time.

Bins have an **adaptive width**: ``width = ceil((|pre| + |edge| - 1) /
num_bins)`` ticks, where ``|.|`` is support size.  For the two-edge training
pairs this is almost always one tick (full resolution); when routing folds a
long pre-path into a virtual edge the width grows so the window still covers
the achievable delay range instead of folding most of the tail into the last
bin.  The width is a pure function of the inputs, so training targets and
inference reconstructions always agree on the representation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..histograms import DiscreteDistribution, delay_profile, from_delay_profile
from ..ml import MlpConfig, MlpDistributionRegressor, StandardScaler


__all__ = ["EstimatorConfig", "DistributionEstimator"]


@dataclass(frozen=True)
class EstimatorConfig:
    """Estimation-model hyper-parameters.

    ``num_bins`` bounds the predicted support: bins ``0 .. num_bins-2`` are
    exact delays beyond the optimistic minimum, the final bin holds the tail.
    """

    num_bins: int = 24
    mlp: MlpConfig = MlpConfig(hidden_sizes=(64, 64), max_epochs=150)

    def __post_init__(self) -> None:
        if self.num_bins < 2:
            raise ValueError("num_bins must be >= 2")


class DistributionEstimator:
    """MLP-backed two-distribution combiner (the learned half of the hybrid)."""

    def __init__(self, config: EstimatorConfig | None = None) -> None:
        self.config = config or EstimatorConfig()
        self._scaler = StandardScaler()
        self._mlp = MlpDistributionRegressor(self.config.mlp)
        self._fitted = False

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    # ------------------------------------------------------------------
    # Target construction
    # ------------------------------------------------------------------

    def bin_width(
        self, pre: DiscreteDistribution, edge_cost: DiscreteDistribution
    ) -> int:
        """Adaptive tick width of one output bin for this combination."""
        reach = pre.support_size + edge_cost.support_size - 1
        return max(1, -(-reach // self.config.num_bins))  # ceil division

    def target_profile(
        self,
        truth: DiscreteDistribution,
        pre: DiscreteDistribution,
        edge_cost: DiscreteDistribution,
    ) -> np.ndarray:
        """Ground-truth combined cost as a delay profile over the model bins.

        Bin ``i`` holds the truth mass with delay (beyond the anchor
        ``pre.min + edge.min``) in ``[i*w, (i+1)*w)`` where ``w`` is the
        adaptive :meth:`bin_width`; the last bin also takes any residual
        tail.  Ground-truth mass below the anchor (possible in noisy
        empirical joints) is clamped into bin 0 so profiles remain valid
        distributions.
        """
        anchor = pre.min_value + edge_cost.min_value
        width = self.bin_width(pre, edge_cost)
        profile = np.zeros(self.config.num_bins)
        for tick, p in truth:
            index = min(max((tick - anchor) // width, 0), self.config.num_bins - 1)
            profile[index] += p
        return profile

    # ------------------------------------------------------------------
    # Training / prediction
    # ------------------------------------------------------------------

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "DistributionEstimator":
        """Train on stacked feature rows and delay-profile targets."""
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if targets.shape[1] != self.config.num_bins:
            raise ValueError(
                f"targets must have {self.config.num_bins} bins, got {targets.shape[1]}"
            )
        scaled = self._scaler.fit_transform(features)
        self._mlp.fit(scaled, targets)
        self._fitted = True
        return self

    def predict_profiles(self, features: np.ndarray) -> np.ndarray:
        """Predicted delay profiles for a feature batch."""
        if not self._fitted:
            raise RuntimeError("DistributionEstimator is not fitted")
        return self._mlp.predict(self._scaler.transform(features))

    def predict_distribution(
        self,
        features: np.ndarray,
        pre: DiscreteDistribution,
        edge_cost: DiscreteDistribution,
    ) -> DiscreteDistribution:
        """Predicted combined cost distribution, re-anchored at the optimistic
        minimum of the combination.

        Each predicted bin's mass is spread uniformly over the ``width``
        ticks it covers, so wide-bin predictions stay smooth instead of
        spiking at bin boundaries.
        """
        profile = self.predict_profiles(np.atleast_2d(features))[0]
        anchor = pre.min_value + edge_cost.min_value
        width = self.bin_width(pre, edge_cost)
        if width == 1:
            return from_delay_profile(profile, anchor)
        expanded = np.repeat(profile / width, width)
        return from_delay_profile(expanded, anchor)

    # ------------------------------------------------------------------
    # Reference combiner
    # ------------------------------------------------------------------

    @staticmethod
    def convolution_profile(
        pre: DiscreteDistribution,
        edge_cost: DiscreteDistribution,
        *,
        num_bins: int,
    ) -> np.ndarray:
        """The independence baseline expressed in the same bin space."""
        return delay_profile(pre.convolve(edge_cost), num_bins=num_bins)
