"""The convolution-vs-estimation dependence classifier.

Component (ii) of the paper's Hybrid Model: a binary classifier that decides,
per intersection crossing, whether the classical convolution is safe (edges
independent) or the learned estimator should be used (edges dependent).

Training labels are *outcome-based*, matching the paper's criterion: a
combination is labelled "estimate" exactly when the estimator's KL-divergence
to the ground-truth combined distribution beats convolution's on held-in
data.  The classifier then generalises that decision to unseen combinations
from the same features the estimator sees (including the intersection's
historical dependence score).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ml import Classifier, LogisticRegression, RandomForestClassifier, StandardScaler

__all__ = ["ClassifierConfig", "DependenceClassifier"]

#: Label value meaning "use the estimation model".
USE_ESTIMATION = 1
#: Label value meaning "use convolution".
USE_CONVOLUTION = 0


@dataclass(frozen=True)
class ClassifierConfig:
    """Dependence-classifier settings.

    ``backend`` selects the learner: ``"logistic"`` (default — fast,
    deterministic, well-calibrated) or ``"forest"``.  ``threshold`` is the
    estimation-probability cut-off; values above 0.5 bias the hybrid towards
    convolution, which is the cheaper and safer default at independent
    intersections.
    """

    backend: str = "logistic"
    threshold: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.backend not in ("logistic", "forest"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if not 0.0 < self.threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")


class DependenceClassifier:
    """Binary classifier choosing convolution vs estimation per combination."""

    def __init__(self, config: ClassifierConfig | None = None) -> None:
        self.config = config or ClassifierConfig()
        self._scaler = StandardScaler()
        self._model: Classifier
        if self.config.backend == "logistic":
            self._model = LogisticRegression(l2=1e-3)
        else:
            self._model = RandomForestClassifier(num_trees=30, seed=self.config.seed)
        self._fitted = False
        self._constant_label: int | None = None

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "DependenceClassifier":
        """Train from feature rows and 0/1 labels (1 = use estimation).

        Degenerate single-class training sets (every pair independent, or
        every pair dependent) are handled by collapsing to a constant
        decision instead of erroring.
        """
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64).ravel()
        if labels.size != features.shape[0]:
            raise ValueError("features and labels must have the same length")
        if not np.all((labels == 0) | (labels == 1)):
            raise ValueError("labels must be 0 or 1")
        unique = np.unique(labels)
        if unique.size == 1:
            self._constant_label = int(unique[0])
        else:
            self._constant_label = None
            scaled = self._scaler.fit_transform(features)
            self._model.fit(scaled, labels)
        self._fitted = True
        return self

    def estimation_probability(self, features: np.ndarray) -> np.ndarray:
        """``P(use estimation)`` per feature row."""
        if not self._fitted:
            raise RuntimeError("DependenceClassifier is not fitted")
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        if self._constant_label is not None:
            return np.full(features.shape[0], float(self._constant_label))
        probs = self._model.predict_proba(self._scaler.transform(features))
        return probs[:, USE_ESTIMATION]

    def should_estimate(self, features: np.ndarray) -> bool:
        """Decision for a single combination."""
        return bool(
            self.estimation_probability(features)[0] >= self.config.threshold
        )

    def decide_batch(self, features: np.ndarray) -> np.ndarray:
        """Vectorised decisions (bool array) for a feature batch."""
        return self.estimation_probability(features) >= self.config.threshold
