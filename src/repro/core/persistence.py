"""Persistence: trained hybrids and service snapshots on disk.

Two independent envelopes live here:

* **trained hybrids** (:func:`save_hybrid` / :func:`load_hybrid`) — one
  ``model.npz`` holding every numeric array (MLP weights, scalers,
  classifier coefficients, edge-cost histograms, intersection stats) plus
  a ``meta.json`` with configuration and layout, so a trained model can be
  reused across experiment runs without retraining;
* **service snapshots** (:func:`save_service_snapshot` /
  :func:`load_service_snapshot`) — the kind-tagged JSON document
  :meth:`repro.service.RoutingService.snapshot` produces (per-slice cost
  tables with their exact versions, the update-feed position, optionally a
  cache dump), written as one self-describing file.  The document is plain
  JSON all the way down, so a blue/green successor on another host can
  :meth:`~repro.service.RoutingService.restore` from it byte-for-byte —
  Python floats round-trip exactly through JSON.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from ..histograms import DiscreteDistribution
from ..ml import MlpConfig
from ..network import RoadNetwork
from .classifier import ClassifierConfig, DependenceClassifier
from .costs import EdgeCostTable
from .estimator import DistributionEstimator, EstimatorConfig
from .features import FeatureConfig, IntersectionStats, PairFeatureExtractor
from .training import TrainedHybrid, TrainingReport

__all__ = [
    "load_hybrid",
    "load_service_snapshot",
    "save_hybrid",
    "save_service_snapshot",
]

_FORMAT_VERSION = 1

#: Format version of the service-snapshot envelope.  Must match the value
#: :meth:`repro.service.RoutingService.snapshot` stamps into documents
#: (the service module keeps its own copy to avoid importing this module's
#: heavyweight model-persistence dependencies on the request path).
_SERVICE_SNAPSHOT_FORMAT = 2

#: Formats this build can still read (format 1 predates the temporal
#: section; the service restores it with incident state reset).
_ACCEPTED_SNAPSHOT_FORMATS = frozenset({1, 2})


def _check_service_snapshot(document: Mapping[str, Any]) -> None:
    """Reject anything that is not a readable-format service snapshot."""
    if not isinstance(document, Mapping):
        raise ValueError("a service snapshot must be a JSON object")
    if document.get("kind") != "service_snapshot":
        raise ValueError(
            "expected a service_snapshot document, got "
            f"kind={document.get('kind')!r}"
        )
    if document.get("format_version") not in _ACCEPTED_SNAPSHOT_FORMATS:
        raise ValueError(
            "unsupported service snapshot format: "
            f"{document.get('format_version')!r} "
            f"(this build reads formats {sorted(_ACCEPTED_SNAPSHOT_FORMATS)})"
        )


def save_service_snapshot(
    document: Mapping[str, Any], path: str | Path
) -> Path:
    """Write one service-snapshot document to ``path`` as JSON.

    The document is validated (kind tag and format version) *before*
    anything is written, so a typo'd payload cannot shadow a good snapshot
    file.  Returns the path written.
    """
    _check_service_snapshot(document)
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document))
    return path


def load_service_snapshot(path: str | Path) -> dict[str, Any]:
    """Read and validate a snapshot written by :func:`save_service_snapshot`.

    Hand the returned document to
    :meth:`repro.service.RoutingService.restore`.
    """
    document = json.loads(Path(path).read_text())
    _check_service_snapshot(document)
    return document


def save_hybrid(trained: TrainedHybrid, directory: str | Path) -> None:
    """Persist a trained hybrid model (network itself is *not* stored).

    Only the ``"logistic"`` classifier backend is serialisable; forest
    backends raise ``ValueError`` (retrain instead — forests are cheap).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    arrays: dict[str, np.ndarray] = {}
    estimator = trained.estimator
    network = estimator._mlp.network
    if network is None:
        raise ValueError("estimator is not fitted")
    for i, weight in enumerate(network.weights):
        arrays[f"mlp_weight_{i}"] = weight
    for i, bias in enumerate(network.biases):
        arrays[f"mlp_bias_{i}"] = bias
    scaler = estimator._scaler
    if scaler.mean_ is None or scaler.scale_ is None:
        raise ValueError("estimator scaler is not fitted")
    arrays["est_scaler_mean"] = scaler.mean_
    arrays["est_scaler_scale"] = scaler.scale_

    classifier = trained.classifier
    if classifier.config.backend != "logistic":
        raise ValueError("only the logistic classifier backend is serialisable")
    if classifier._constant_label is None:
        model = classifier._model
        arrays["clf_coef"] = model.coef_  # type: ignore[attr-defined]
        arrays["clf_intercept"] = np.asarray([model.intercept_])  # type: ignore[attr-defined]
        clf_scaler = classifier._scaler
        arrays["clf_scaler_mean"] = clf_scaler.mean_
        arrays["clf_scaler_scale"] = clf_scaler.scale_

    # Edge cost table: offsets, lengths, concatenated probabilities.
    edge_ids, offsets, lengths, probs = [], [], [], []
    for edge in trained.network.edges:
        if trained.costs.has_observed_cost(edge.id):
            dist = trained.costs.cost(edge)
            edge_ids.append(edge.id)
            offsets.append(dist.offset)
            lengths.append(dist.support_size)
            probs.append(dist.probs)
    arrays["cost_edge_ids"] = np.asarray(edge_ids, dtype=np.int64)
    arrays["cost_offsets"] = np.asarray(offsets, dtype=np.int64)
    arrays["cost_lengths"] = np.asarray(lengths, dtype=np.int64)
    arrays["cost_probs"] = (
        np.concatenate(probs) if probs else np.zeros(0, dtype=np.float64)
    )

    stats = trained.features._stats
    arrays["stat_vertices"] = np.asarray(sorted(stats), dtype=np.int64)
    arrays["stat_values"] = np.asarray(
        [
            [stats[v].mean_mutual_information, stats[v].num_pairs_observed, stats[v].num_samples]
            for v in sorted(stats)
        ],
        dtype=np.float64,
    ).reshape(len(stats), 3)

    np.savez_compressed(directory / "model.npz", **arrays)

    meta = {
        "format_version": _FORMAT_VERSION,
        "resolution": trained.costs.resolution,
        "estimator": {
            "num_bins": estimator.config.num_bins,
            "hidden_sizes": list(estimator.config.mlp.hidden_sizes),
            "activation": estimator.config.mlp.activation,
        },
        "classifier": {
            "backend": classifier.config.backend,
            "threshold": classifier.config.threshold,
            "constant_label": classifier._constant_label,
        },
        "features": {"profile_bins": trained.features.config.profile_bins},
        "report": vars(trained.report),
    }
    (directory / "meta.json").write_text(json.dumps(meta, indent=2))


def load_hybrid(directory: str | Path, network: RoadNetwork) -> TrainedHybrid:
    """Load a hybrid saved by :func:`save_hybrid` onto ``network``.

    The caller must supply the same network the model was trained on (edge
    ids must match; the network is not serialised with the model).
    """
    directory = Path(directory)
    meta = json.loads((directory / "meta.json").read_text())
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported model format: {meta.get('format_version')!r}")
    data = np.load(directory / "model.npz")

    estimator_config = EstimatorConfig(
        num_bins=int(meta["estimator"]["num_bins"]),
        mlp=MlpConfig(
            hidden_sizes=tuple(meta["estimator"]["hidden_sizes"]),
            activation=meta["estimator"]["activation"],
        ),
    )
    estimator = DistributionEstimator(estimator_config)
    num_layers = sum(1 for key in data.files if key.startswith("mlp_weight_"))
    from ..ml.mlp import MlpNetwork

    weights = [data[f"mlp_weight_{i}"] for i in range(num_layers)]
    mlp_network = MlpNetwork(
        weights[0].shape[0],
        tuple(w.shape[0] for w in weights[1:]),
        weights[-1].shape[1],
        activation=estimator_config.mlp.activation,
    )
    mlp_network.weights = weights
    mlp_network.biases = [data[f"mlp_bias_{i}"] for i in range(num_layers)]
    estimator._mlp.network = mlp_network
    estimator._mlp._fitted = True
    estimator._scaler.mean_ = data["est_scaler_mean"]
    estimator._scaler.scale_ = data["est_scaler_scale"]
    estimator._fitted = True

    classifier = DependenceClassifier(
        ClassifierConfig(
            backend=meta["classifier"]["backend"],
            threshold=float(meta["classifier"]["threshold"]),
        )
    )
    constant = meta["classifier"]["constant_label"]
    if constant is not None:
        classifier._constant_label = int(constant)
    else:
        from ..ml import LogisticRegression

        model = LogisticRegression()
        model.coef_ = data["clf_coef"]
        model.intercept_ = float(data["clf_intercept"][0])
        model._fitted = True
        classifier._model = model
        classifier._scaler.mean_ = data["clf_scaler_mean"]
        classifier._scaler.scale_ = data["clf_scaler_scale"]
    classifier._fitted = True

    costs = EdgeCostTable(network, resolution=float(meta["resolution"]))
    cursor = 0
    for edge_id, offset, length in zip(
        data["cost_edge_ids"], data["cost_offsets"], data["cost_lengths"]
    ):
        probs = data["cost_probs"][cursor : cursor + int(length)]
        cursor += int(length)
        costs.set_cost(int(edge_id), DiscreteDistribution(int(offset), probs, normalize=False))

    stats = {}
    for vertex, row in zip(data["stat_vertices"], data["stat_values"]):
        stats[int(vertex)] = IntersectionStats(
            mean_mutual_information=float(row[0]),
            num_pairs_observed=int(row[1]),
            num_samples=int(row[2]),
        )
    extractor = PairFeatureExtractor(
        network,
        config=FeatureConfig(profile_bins=int(meta["features"]["profile_bins"])),
        intersection_stats=stats,
    )

    report = TrainingReport(**meta["report"])
    return TrainedHybrid(
        network=network,
        costs=costs,
        estimator=estimator,
        classifier=classifier,
        features=extractor,
        report=report,
    )
