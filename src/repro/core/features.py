"""Feature extraction for (pre-path, next-edge) combinations.

The estimation model and the dependence classifier both consume a fixed
feature vector describing:

* the **pre-path** ("virtual edge") — shape and moments of the cost
  distribution of the path so far,
* the **next edge** — static attributes (length, free-flow time, road
  category) and the moments of its marginal cost histogram,
* the **intersection** joining them — degrees plus an *observed dependence
  score*: the mean mutual information of the empirical pair joints recorded
  at that intersection during training.  This is the historical-data signal
  that lets the classifier predict, at query time, whether the intersection
  couples adjacent travel times (the ground-truth coupling itself is never
  visible to the models).

The same extractor serves training pairs (pre-path = first edge) and routing
(pre-path = the accumulated virtual edge), which is exactly what makes the
paper's virtual-edge trick work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..histograms import DiscreteDistribution, shape_profile
from ..network import Edge, RoadCategory, RoadNetwork

__all__ = ["FeatureConfig", "IntersectionStats", "PairFeatureExtractor"]

_CATEGORIES = list(RoadCategory)


@dataclass(frozen=True)
class FeatureConfig:
    """Feature-vector layout parameters.

    ``profile_bins`` controls how many leading delay bins of the pre-path
    distribution are fed to the models (the final bin accumulates the tail).
    """

    profile_bins: int = 12

    def __post_init__(self) -> None:
        if self.profile_bins < 2:
            raise ValueError("profile_bins must be >= 2")


@dataclass(frozen=True)
class IntersectionStats:
    """Historical dependence evidence at one intersection."""

    mean_mutual_information: float
    num_pairs_observed: int
    num_samples: int


class PairFeatureExtractor:
    """Builds model inputs for a (pre-path distribution, next edge) pair."""

    def __init__(
        self,
        network: RoadNetwork,
        *,
        config: FeatureConfig | None = None,
        intersection_stats: dict[int, IntersectionStats] | None = None,
    ) -> None:
        self.network = network
        self.config = config or FeatureConfig()
        self._stats = intersection_stats or {}

    @property
    def num_features(self) -> int:
        """Length of the produced feature vector."""
        # pre-path summary (5) + pre shape profile + edge numeric (5) + edge
        # cost shape profile + category one-hot + intersection (4)
        return 5 + 2 * self.config.profile_bins + 5 + len(_CATEGORIES) + 4

    def set_intersection_stats(self, stats: dict[int, IntersectionStats]) -> None:
        """Install historical dependence evidence (training-time product)."""
        self._stats = stats

    def intersection_stats(self, vertex_id: int) -> IntersectionStats:
        """Stats for one intersection; zeros when never observed."""
        return self._stats.get(
            vertex_id, IntersectionStats(0.0, 0, 0)
        )

    def extract(
        self,
        pre: DiscreteDistribution,
        edge: Edge,
        edge_cost: DiscreteDistribution,
    ) -> np.ndarray:
        """Feature vector for combining ``pre`` with ``edge``.

        ``edge_cost`` is the next edge's marginal cost histogram (the model
        may not peek at ground truth, so the caller passes whatever cost
        table routing itself uses).
        """
        pre_profile, pre_width = shape_profile(pre, num_bins=self.config.profile_bins)
        pre_summary = [
            pre.mean() - pre.min_value,
            pre.std(),
            float(pre.support_size),
            pre.entropy(),
            float(pre_width),
        ]

        edge_profile, edge_width = shape_profile(
            edge_cost, num_bins=self.config.profile_bins
        )
        edge_numeric = [
            edge.length / 1000.0,
            edge.free_flow_time / 60.0,
            edge_cost.mean() - edge_cost.min_value,
            edge_cost.std(),
            float(edge_width),
        ]
        category = np.zeros(len(_CATEGORIES))
        category[_CATEGORIES.index(edge.category)] = 1.0

        stats = self.intersection_stats(edge.source)
        intersection = [
            float(self.network.out_degree(edge.source)),
            float(self.network.in_degree(edge.source)),
            stats.mean_mutual_information,
            float(np.log1p(stats.num_samples)),
        ]
        return np.concatenate(
            [
                np.asarray(pre_summary, dtype=np.float64),
                pre_profile,
                np.asarray(edge_numeric, dtype=np.float64),
                edge_profile,
                category,
                np.asarray(intersection, dtype=np.float64),
            ]
        )

    def extract_batch(
        self,
        items: list[tuple[DiscreteDistribution, Edge, DiscreteDistribution]],
    ) -> np.ndarray:
        """Stack feature vectors for a batch of combinations."""
        if not items:
            raise ValueError("need at least one item")
        return np.vstack([self.extract(pre, edge, cost) for pre, edge, cost in items])
