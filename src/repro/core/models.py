"""Cost combiners: convolution, pure estimation, and the Hybrid Model.

A *cost combiner* answers two questions for path-cost computation:

* ``edge_cost(edge)`` — the cost distribution of a path's first edge,
* ``combine(pre, edge)`` — the cost distribution of "pre-path then edge".

:class:`ConvolutionModel` is the classical independence baseline;
:class:`EstimationModel` always trusts the learned estimator; and
:class:`HybridModel` — the paper's contribution — lets the dependence
classifier arbitrate per intersection crossing.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from ..histograms import DiscreteDistribution
from ..network import Edge
from .classifier import DependenceClassifier
from .costs import EdgeCostTable
from .estimator import DistributionEstimator
from .features import PairFeatureExtractor

__all__ = [
    "CostCombiner",
    "ConvolutionModel",
    "EstimationModel",
    "HybridModel",
    "HybridStats",
]


class CostCombiner(abc.ABC):
    """Interface the routing algorithms program against."""

    #: Whether folding tail mass beyond the budget into a single cell leaves
    #: this combiner's results exact for the budget objective.  True for
    #: convolution (linear in the distribution); False for learned combiners,
    #: whose feature extraction would see the folded spike and whose output
    #: window would re-spread that mass below the budget.  The router only
    #: truncates search labels when this is True.
    exact_under_truncation: bool = False

    #: Whether ``combine`` is exactly ``pre.convolve(edge_cost(edge))`` — a
    #: linear convolution the columnar search core can evaluate for a whole
    #: frontier generation as one batched kernel.  Learned combiners
    #: transform distributions nonlinearly (classifier arbitration, estimator
    #: output), so they must keep the scalar label-at-a-time loop.
    vectorized_convolution: bool = False

    def __init__(self, costs: EdgeCostTable) -> None:
        self.costs = costs
        # One publication cell holding (version, memo) so the pair can never
        # tear: the old two-attribute form (clear, then re-stamp the version)
        # let a concurrent reader insert a stale-version cost into a memo
        # already stamped with the new version.  Replacing the whole cell
        # means each memo dict only ever holds costs read under its own
        # version.  (Mid-*compute* table mutation is excluded one layer up:
        # the serving layer serialises `apply_deltas` against in-flight
        # requests — see repro.service.)
        self._edge_cache_cell: tuple[int, dict[int, DiscreteDistribution]] = (
            costs.version,
            {},
        )

    def edge_cost(self, edge: Edge) -> DiscreteDistribution:
        """Cost distribution of a single edge.

        Memoised per edge id (distributions are immutable); the memo is
        dropped wholesale whenever the cost table's mutation ``version``
        moves, so ``set_cost`` / ``apply_deltas`` edits are always observed.
        """
        table, version = self.costs.versioned
        cache_version, cache = self._edge_cache_cell
        if version != cache_version:
            cache = {}
            self._edge_cache_cell = (version, cache)
        cached = cache.get(edge.id)
        if cached is None:
            cached = table.get(edge.id)
            if cached is None:
                cached = self.costs.free_flow_cost(edge)
            cache[edge.id] = cached
        return cached

    @abc.abstractmethod
    def combine(
        self, pre: DiscreteDistribution, edge: Edge
    ) -> DiscreteDistribution:
        """Cost distribution of traversing ``pre``-path then ``edge``."""


class ConvolutionModel(CostCombiner):
    """The classical baseline: every intersection treated as independent."""

    exact_under_truncation = True
    vectorized_convolution = True

    def combine(self, pre: DiscreteDistribution, edge: Edge) -> DiscreteDistribution:
        return pre.convolve(self.edge_cost(edge))


@dataclass
class HybridStats:
    """Counts of combiner decisions during a computation (observability)."""

    convolutions: int = 0
    estimations: int = 0

    @property
    def total(self) -> int:
        return self.convolutions + self.estimations

    @property
    def estimation_fraction(self) -> float:
        if self.total == 0:
            return 0.0
        return self.estimations / self.total

    def reset(self) -> None:
        self.convolutions = 0
        self.estimations = 0


class EstimationModel(CostCombiner):
    """Always use the learned estimator (ablation / upper-trust variant)."""

    def __init__(
        self,
        costs: EdgeCostTable,
        estimator: DistributionEstimator,
        features: PairFeatureExtractor,
    ) -> None:
        super().__init__(costs)
        self.estimator = estimator
        self.features = features

    def combine(self, pre: DiscreteDistribution, edge: Edge) -> DiscreteDistribution:
        edge_cost = self.edge_cost(edge)
        vector = self.features.extract(pre, edge, edge_cost)
        return self.estimator.predict_distribution(vector, pre, edge_cost)


class HybridModel(CostCombiner):
    """The paper's Hybrid Model: classifier-arbitrated combination.

    At each intersection crossing the dependence classifier inspects the
    (pre-path, next-edge) features; convolution is used when the intersection
    looks independent, the estimation model otherwise.  Decision counts are
    recorded in :attr:`stats`.
    """

    def __init__(
        self,
        costs: EdgeCostTable,
        estimator: DistributionEstimator,
        classifier: DependenceClassifier,
        features: PairFeatureExtractor,
    ) -> None:
        super().__init__(costs)
        self.estimator = estimator
        self.classifier = classifier
        self.features = features
        self.stats = HybridStats()

    def combine(self, pre: DiscreteDistribution, edge: Edge) -> DiscreteDistribution:
        edge_cost = self.edge_cost(edge)
        vector = self.features.extract(pre, edge, edge_cost)
        if self.classifier.should_estimate(vector):
            self.stats.estimations += 1
            return self.estimator.predict_distribution(vector, pre, edge_cost)
        self.stats.convolutions += 1
        return pre.convolve(edge_cost)
