"""Iterative path-cost computation with the virtual-edge trick.

The paper: "Path cost computation is an iterative process, as the cost of a
path is computed by repeatedly combining the cost of the path so far with the
cost of the next edge until the last edge is reached.  We can use the
distribution estimation model built for short paths to estimate the costs of
longer paths by treating the path so far (pre-path) as a 'virtual' edge."

:class:`PathCostComputer` implements exactly that recursion over any
:class:`~repro.core.models.CostCombiner`, with optional support truncation so
cost vectors stay bounded on long paths.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..histograms import DiscreteDistribution
from ..network import Edge
from .models import CostCombiner

__all__ = ["PathCostComputer"]


class PathCostComputer:
    """Folds a combiner over a path: ``cost(e1..ek) = combine(cost(e1..ek-1), ek)``.

    ``max_support`` bounds each intermediate distribution's support (tail
    mass folds into the final cell), keeping the per-step cost constant on
    long paths; ``None`` disables truncation.
    """

    def __init__(self, combiner: CostCombiner, *, max_support: int | None = None) -> None:
        if max_support is not None and max_support < 2:
            raise ValueError("max_support must be >= 2 when given")
        self.combiner = combiner
        self.max_support = max_support

    def _clip(self, dist: DiscreteDistribution) -> DiscreteDistribution:
        if self.max_support is not None:
            return dist.truncate(self.max_support)
        return dist

    def cost(self, path: Sequence[Edge]) -> DiscreteDistribution:
        """Cost distribution of a whole path."""
        current: DiscreteDistribution | None = None
        for current in self.prefix_costs(path):
            pass
        assert current is not None  # prefix_costs raises on empty paths
        return current

    def prefix_costs(self, path: Sequence[Edge]) -> Iterator[DiscreteDistribution]:
        """Yield the cost distribution of every prefix of ``path``.

        ``prefix_costs(p)[-1] == cost(p)``; useful for anytime monitoring and
        for tests asserting the recursion's intermediate states.
        """
        if len(path) == 0:
            raise ValueError("path must contain at least one edge")
        current = self._clip(self.combiner.edge_cost(path[0]))
        yield current
        for previous, edge in zip(path, path[1:]):
            if previous.target != edge.source:
                raise ValueError(
                    f"edges {previous.id} -> {edge.id} are not consecutive"
                )
            current = self._clip(self.combiner.combine(current, edge))
            yield current

    def probability_within(self, path: Sequence[Edge], budget_ticks: int) -> float:
        """``P(path cost <= budget)`` under this combiner's model."""
        return self.cost(path).prob_within(budget_ticks)
