"""Synthetic trip generation: the corpus the learning pipeline trains on.

Generates random origin–destination trips routed along fastest free-flow
paths, samples per-edge travel times from the congestion ground truth, and
optionally emits noisy GPS fixes (to exercise the map matcher, completing the
raw-GPS-to-histogram pipeline the paper's data preparation uses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..network import Edge, RoadNetwork, free_flow_weight, reconstruct_path
from ..network.paths import dijkstra
from .congestion import CongestionModel
from .types import GpsPoint, GpsTrajectory, MatchedTrajectory

__all__ = ["TripConfig", "TripGenerator", "emit_gps"]


@dataclass(frozen=True)
class TripConfig:
    """Trip-generation parameters.

    ``min_edges`` discards trivial trips (a single edge yields no pair
    observations); ``max_edges`` bounds route length so corpus cost stays
    predictable.
    """

    min_edges: int = 2
    max_edges: int = 60

    def __post_init__(self) -> None:
        if self.min_edges < 1:
            raise ValueError("min_edges must be >= 1")
        if self.max_edges < self.min_edges:
            raise ValueError("max_edges must be >= min_edges")


class TripGenerator:
    """Random OD trips over a network, timed by the congestion ground truth."""

    def __init__(
        self,
        network: RoadNetwork,
        model: CongestionModel,
        *,
        config: TripConfig | None = None,
        seed: int = 0,
    ) -> None:
        self.network = network
        self.model = model
        self.config = config or TripConfig()
        self._rng = np.random.default_rng(seed)
        self._vertex_ids = sorted(network.vertex_ids())
        self._next_id = 0

    def random_route(self) -> list[Edge] | None:
        """One random OD shortest route, or ``None`` when unusable.

        Routes outside ``[min_edges, max_edges]`` and unreachable OD pairs
        are rejected; callers loop until enough routes accumulate.
        """
        source, target = self._rng.choice(self._vertex_ids, size=2, replace=False)
        dist, parent = dijkstra(
            self.network, int(source), weight=free_flow_weight, targets={int(target)}
        )
        if int(target) not in dist:
            return None
        route = reconstruct_path(parent, int(source), int(target))
        if not self.config.min_edges <= len(route) <= self.config.max_edges:
            return None
        return route

    def generate_trip(self) -> MatchedTrajectory | None:
        """One matched trip with ground-truth sampled travel times."""
        route = self.random_route()
        if route is None:
            return None
        times = self.model.sample_path_times(route, self._rng)
        trip = MatchedTrajectory.from_times(
            self._next_id, [edge.id for edge in route], times
        )
        self._next_id += 1
        return trip

    def generate(self, num_trips: int, *, max_attempts_factor: int = 20) -> Iterator[MatchedTrajectory]:
        """Yield ``num_trips`` trips (skipping rejected OD draws).

        Raises ``RuntimeError`` when the rejection rate is so high that
        ``num_trips * max_attempts_factor`` draws do not suffice — a sign the
        network or config is degenerate, better surfaced than looped forever.
        """
        produced = 0
        attempts = 0
        budget = num_trips * max_attempts_factor
        while produced < num_trips:
            if attempts >= budget:
                raise RuntimeError(
                    f"only generated {produced}/{num_trips} trips in {attempts} attempts"
                )
            attempts += 1
            trip = self.generate_trip()
            if trip is None:
                continue
            produced += 1
            yield trip


def emit_gps(
    network: RoadNetwork,
    route: Sequence[Edge],
    travel_times: Sequence[int],
    *,
    resolution: float,
    trajectory_id: int = 0,
    interval: float = 10.0,
    noise_std: float = 5.0,
    rng: np.random.Generator | None = None,
) -> GpsTrajectory:
    """Emit noisy GPS fixes along a timed route.

    The vehicle moves at constant speed within each edge (piecewise-linear
    position over time); fixes are taken every ``interval`` seconds with
    isotropic Gaussian noise of ``noise_std`` metres.
    """
    if len(route) != len(travel_times):
        raise ValueError("route and travel_times must have equal length")
    if interval <= 0:
        raise ValueError("interval must be positive")
    rng = rng or np.random.default_rng(0)

    # Piecewise-linear trajectory: breakpoints at edge boundaries.
    breakpoints: list[tuple[float, float, float]] = []  # (time_s, x, y)
    clock = 0.0
    first = network.vertex(route[0].source)
    breakpoints.append((0.0, first.x, first.y))
    for edge, ticks in zip(route, travel_times):
        clock += float(ticks) * resolution
        vertex = network.vertex(edge.target)
        breakpoints.append((clock, vertex.x, vertex.y))

    points: list[GpsPoint] = []
    total = breakpoints[-1][0]
    t = 0.0
    segment = 0
    while t <= total + 1e-9:
        while segment + 1 < len(breakpoints) - 1 and breakpoints[segment + 1][0] < t:
            segment += 1
        t0, x0, y0 = breakpoints[segment]
        t1, x1, y1 = breakpoints[segment + 1]
        frac = 0.0 if t1 <= t0 else min(1.0, max(0.0, (t - t0) / (t1 - t0)))
        x = x0 + frac * (x1 - x0) + float(rng.normal(0.0, noise_std))
        y = y0 + frac * (y1 - y0) + float(rng.normal(0.0, noise_std))
        points.append(GpsPoint(t, x, y))
        t += interval
    # Always include the arrival fix so short edges are observable.
    xf, yf = breakpoints[-1][1], breakpoints[-1][2]
    if not points or points[-1].t < total:
        points.append(
            GpsPoint(
                total,
                xf + float(rng.normal(0.0, noise_std)),
                yf + float(rng.normal(0.0, noise_std)),
            )
        )
    return GpsTrajectory(trajectory_id, tuple(points))
