"""Trajectory substrate.

Congestion-state ground-truth traffic model (exact marginals, pair joints and
path distributions), synthetic trip generation with GPS emission, HMM map
matching, the trajectory store, and dependence statistics.
"""

from .congestion import STRUCTURED_CONFIG, CongestionConfig, CongestionModel
from .generator import TripConfig, TripGenerator, emit_gps
from .matching import HmmMapMatcher, MatcherConfig
from .statistics import (
    DependenceReport,
    PairDependence,
    dependence_report,
    empirical_vs_truth_kl,
    pair_dependence,
)
from .store import TrajectoryStore
from .types import EdgeTraversal, GpsPoint, GpsTrajectory, MatchedTrajectory

__all__ = [
    "CongestionConfig",
    "CongestionModel",
    "DependenceReport",
    "EdgeTraversal",
    "GpsPoint",
    "GpsTrajectory",
    "HmmMapMatcher",
    "MatchedTrajectory",
    "MatcherConfig",
    "PairDependence",
    "STRUCTURED_CONFIG",
    "TrajectoryStore",
    "TripConfig",
    "TripGenerator",
    "dependence_report",
    "emit_gps",
    "empirical_vs_truth_kl",
    "pair_dependence",
]
