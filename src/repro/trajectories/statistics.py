"""Corpus statistics: empirical histograms and dependence analysis.

Implements the measurement behind the paper's headline data statistic —
"approximately 75 % of all edge pairs with data are dependent" — as a
chi-square independence test over each pair's empirical joint, plus helpers
comparing empirical estimates against the congestion model's closed-form
ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

from scipy import stats as scipy_stats

from ..histograms import JointDistribution, kl_divergence
from ..network import RoadNetwork
from .congestion import CongestionModel
from .store import PairKey, TrajectoryStore

__all__ = [
    "PairDependence",
    "pair_dependence",
    "dependence_report",
    "DependenceReport",
    "empirical_vs_truth_kl",
]


@dataclass(frozen=True)
class PairDependence:
    """Result of the independence test for one edge pair."""

    key: PairKey
    num_samples: int
    statistic: float
    p_value: float
    mutual_information: float

    def is_dependent(self, *, alpha: float = 0.05) -> bool:
        """Reject independence at significance level ``alpha``."""
        return self.p_value < alpha


def pair_dependence(
    store: TrajectoryStore, key: PairKey, *, min_samples: int = 30
) -> PairDependence:
    """Chi-square independence test on one pair's empirical joint."""
    samples = store.pair_samples(key)
    if len(samples) < min_samples:
        raise ValueError(f"pair {key}: {len(samples)} samples < {min_samples}")
    joint = JointDistribution.from_samples(samples)
    statistic, dof = joint.chi_square_statistic(len(samples))
    p_value = float(scipy_stats.chi2.sf(statistic, dof))
    return PairDependence(
        key=key,
        num_samples=len(samples),
        statistic=statistic,
        p_value=p_value,
        mutual_information=joint.mutual_information(),
    )


@dataclass(frozen=True)
class DependenceReport:
    """Aggregate dependence statistics over all pairs with sufficient data."""

    num_pairs_tested: int
    num_dependent: int
    alpha: float
    min_samples: int

    @property
    def dependent_fraction(self) -> float:
        """The paper's statistic: fraction of tested pairs that are dependent."""
        if self.num_pairs_tested == 0:
            return 0.0
        return self.num_dependent / self.num_pairs_tested


def dependence_report(
    store: TrajectoryStore,
    *,
    min_samples: int = 30,
    alpha: float = 0.05,
) -> DependenceReport:
    """Test every pair with >= ``min_samples`` observations for dependence."""
    keys = store.pair_keys_with_data(min_samples=min_samples)
    dependent = 0
    for key in keys:
        result = pair_dependence(store, key, min_samples=min_samples)
        if result.is_dependent(alpha=alpha):
            dependent += 1
    return DependenceReport(
        num_pairs_tested=len(keys),
        num_dependent=dependent,
        alpha=alpha,
        min_samples=min_samples,
    )


def empirical_vs_truth_kl(
    store: TrajectoryStore,
    model: CongestionModel,
    network: RoadNetwork,
    key: PairKey,
    *,
    min_samples: int = 30,
) -> float:
    """``KL(truth || empirical)`` of one pair's total-cost distribution.

    Measures how faithfully the sampled corpus reflects the generative
    ground truth — a data-quality diagnostic for experiment configs.
    """
    from ..network.types import EdgePair

    pair = EdgePair(network.edge(key[0]), network.edge(key[1]))
    truth = model.pair_ground_truth(pair)
    empirical = store.pair_total_cost(key, min_samples=min_samples)
    return kl_divergence(truth, empirical)
