"""Latent congestion-state traffic model — the ground-truth substitute.

The paper learns travel-time distributions from real Danish GPS trajectories,
where adjacent edges are spatially *dependent* (~75 % of pairs).  We replace
the proprietary trajectory corpus with a generative traffic model whose
dependence structure is known exactly, so model quality (KL) and routing
quality can be measured against closed-form ground truth:

* Each edge traversal happens under a latent **congestion state**
  (free / moderate / heavy by default).  Conditioned on the state, the edge's
  travel time follows a discrete distribution centred at
  ``free_flow_time * multiplier(state)`` with a binomial spread.
* Along a trajectory the state is a **Markov chain**: crossing intersection
  ``v``, the state persists with probability ``rho(v)`` and is otherwise
  redrawn from the stationary distribution.  ``rho(v) > 0`` makes the two
  adjacent edge travel times dependent — exactly the phenomenon that breaks
  convolution in the paper's motivating example.
* ``rho`` is sampled per intersection: dependent (``rho`` in a configurable
  range) with probability ``dependence_probability`` (default 0.75, the
  paper's measured Danish ratio) and zero otherwise.

Because the chain is Markov with a small state space, the *exact* marginal,
pair joint, and whole-path travel-time distributions are all computable in
closed form (:class:`CongestionModel` methods), while
:meth:`CongestionModel.sample_path_times` draws the synthetic trajectories
the learning pipeline trains on.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb
from typing import Mapping, Sequence

import numpy as np

from ..histograms import DiscreteDistribution, JointDistribution, mixture
from ..network import Edge, EdgePair, RoadCategory, RoadNetwork

__all__ = ["CongestionConfig", "CongestionModel", "STRUCTURED_CONFIG"]


@dataclass(frozen=True)
class CongestionConfig:
    """Parameters of the latent congestion-state traffic model.

    Attributes
    ----------
    resolution:
        Seconds per distribution grid tick.
    multipliers:
        Travel-time multiplier per congestion state (state 0 = free flow).
    stationary:
        Stationary probability of each state; must match ``multipliers`` in
        length and sum to 1.
    relative_spread:
        Half-width of each conditional distribution as a fraction of its
        central travel time (binomial spread around the centre).
    dependence_probability:
        Probability that an intersection couples adjacent edges (paper: 0.75).
    rho_range:
        Persistence probability range for dependent intersections.
    category_multipliers:
        Optional per-road-category override of ``multipliers`` (keyed by
        :class:`~repro.network.RoadCategory` value strings).  Real congestion
        hits arterials harder than side streets; structuring severity by
        category creates the arterial-vs-residential risk trade-off the
        paper's deadline example rests on.  Marginals stay exact because the
        latent state chain itself is unchanged.
    category_dependence:
        Optional per-category dependence probability for intersections (an
        intersection takes the value of its highest-capacity incident edge),
        modelling congestion propagating along major corridors.
    """

    resolution: float = 5.0
    multipliers: tuple[float, ...] = (1.0, 1.6, 2.6)
    stationary: tuple[float, ...] = (0.6, 0.3, 0.1)
    relative_spread: float = 0.25
    dependence_probability: float = 0.75
    rho_range: tuple[float, float] = (0.7, 0.98)
    category_multipliers: Mapping[str, tuple[float, ...]] | None = None
    category_dependence: Mapping[str, float] | None = None

    def __post_init__(self) -> None:
        if self.resolution <= 0:
            raise ValueError("resolution must be positive")
        if len(self.multipliers) != len(self.stationary):
            raise ValueError("multipliers and stationary must have equal length")
        if len(self.multipliers) < 1:
            raise ValueError("need at least one congestion state")
        if any(m <= 0 for m in self.multipliers):
            raise ValueError("multipliers must be positive")
        if any(p < 0 for p in self.stationary):
            raise ValueError("stationary probabilities must be non-negative")
        if abs(sum(self.stationary) - 1.0) > 1e-9:
            raise ValueError("stationary probabilities must sum to 1")
        if not 0.0 <= self.dependence_probability <= 1.0:
            raise ValueError("dependence_probability must be in [0, 1]")
        lo, hi = self.rho_range
        if not 0.0 < lo <= hi <= 1.0:
            raise ValueError("rho_range must satisfy 0 < lo <= hi <= 1")
        if self.category_multipliers is not None:
            for key, values in self.category_multipliers.items():
                RoadCategory(key)  # raises for unknown categories
                if len(values) != len(self.multipliers):
                    raise ValueError(
                        f"category_multipliers[{key!r}] must have "
                        f"{len(self.multipliers)} states"
                    )
                if any(m <= 0 for m in values):
                    raise ValueError("multipliers must be positive")
        if self.category_dependence is not None:
            for key, value in self.category_dependence.items():
                RoadCategory(key)
                if not 0.0 <= value <= 1.0:
                    raise ValueError("dependence probabilities must be in [0, 1]")

    @property
    def num_states(self) -> int:
        return len(self.multipliers)

    def multipliers_for(self, category: RoadCategory) -> tuple[float, ...]:
        """State multipliers for one road category."""
        if self.category_multipliers is not None:
            override = self.category_multipliers.get(category.value)
            if override is not None:
                return tuple(override)
        return self.multipliers

    def dependence_probability_for(self, category: RoadCategory) -> float:
        """Intersection dependence probability for one road category."""
        if self.category_dependence is not None:
            override = self.category_dependence.get(category.value)
            if override is not None:
                return float(override)
        return self.dependence_probability


#: A structured configuration modelling congestion that concentrates on, and
#: propagates along, high-capacity corridors: arterials suffer harsher
#: congested-state slowdowns and their junctions couple adjacent edges almost
#: surely, while residential streets are calmer and more independent.  The
#: blend keeps the overall dependent-pair ratio near the paper's 75 %.
STRUCTURED_CONFIG = CongestionConfig(
    category_multipliers={
        RoadCategory.MOTORWAY.value: (1.0, 1.5, 2.8),
        RoadCategory.TRUNK.value: (1.0, 1.6, 3.0),
        RoadCategory.PRIMARY.value: (1.0, 1.8, 3.4),
        RoadCategory.SECONDARY.value: (1.0, 1.7, 3.0),
        RoadCategory.TERTIARY.value: (1.0, 1.6, 2.6),
        RoadCategory.RESIDENTIAL.value: (1.0, 1.35, 1.9),
        RoadCategory.SERVICE.value: (1.0, 1.3, 1.7),
    },
    category_dependence={
        RoadCategory.MOTORWAY.value: 0.92,
        RoadCategory.TRUNK.value: 0.9,
        RoadCategory.PRIMARY.value: 0.85,
        RoadCategory.SECONDARY.value: 0.8,
        RoadCategory.TERTIARY.value: 0.65,
        RoadCategory.RESIDENTIAL.value: 0.5,
        RoadCategory.SERVICE.value: 0.4,
    },
)


def _binomial_weights(width: int) -> np.ndarray:
    """Symmetric binomial pmf over ``2 * width + 1`` cells."""
    n = 2 * width
    return np.array([comb(n, k) for k in range(n + 1)], dtype=np.float64) / float(2**n)


class CongestionModel:
    """Exact generative traffic model over a road network.

    Parameters
    ----------
    network:
        The road network the model covers.
    config:
        Model parameters; defaults reproduce the paper's dependence ratio.
    seed:
        Seed for the per-intersection dependence field.  The field is part of
        the *model* (ground truth), so it is drawn once at construction;
        trajectory sampling takes its own generator.
    """

    def __init__(
        self,
        network: RoadNetwork,
        config: CongestionConfig | None = None,
        *,
        seed: int = 0,
    ) -> None:
        self.network = network
        self.config = config or CongestionConfig()
        rng = np.random.default_rng(seed)
        self._rho: dict[int, float] = {}
        lo, hi = self.config.rho_range
        for vertex_id in sorted(network.vertex_ids()):
            incident = [*network.out_edges(vertex_id), *network.in_edges(vertex_id)]
            if incident:
                best = min(incident, key=lambda edge: edge.category.rank)
                p_dependent = self.config.dependence_probability_for(best.category)
            else:
                p_dependent = self.config.dependence_probability
            if rng.random() < p_dependent:
                self._rho[vertex_id] = float(rng.uniform(lo, hi))
            else:
                self._rho[vertex_id] = 0.0
        self._pi = np.asarray(self.config.stationary, dtype=np.float64)
        self._conditional_cache: dict[tuple[int, int], DiscreteDistribution] = {}
        self._marginal_cache: dict[int, DiscreteDistribution] = {}

    # ------------------------------------------------------------------
    # Dependence field
    # ------------------------------------------------------------------

    def rho(self, vertex_id: int) -> float:
        """State-persistence probability at intersection ``vertex_id``."""
        return self._rho[vertex_id]

    def is_dependent_vertex(self, vertex_id: int) -> bool:
        """True when the intersection couples adjacent edge travel times."""
        return self._rho[vertex_id] > 0.0

    def dependent_vertex_fraction(self) -> float:
        """Fraction of intersections with positive persistence."""
        values = list(self._rho.values())
        return sum(1 for rho in values if rho > 0) / len(values)

    def transition_matrix(self, vertex_id: int) -> np.ndarray:
        """State transition matrix across intersection ``vertex_id``.

        ``T = rho * I + (1 - rho) * 1 pi^T`` — persist or redraw from the
        stationary distribution.  Stationarity is preserved exactly, so the
        marginal state distribution on *every* edge is ``pi``.
        """
        rho = self._rho[vertex_id]
        k = self.config.num_states
        return rho * np.eye(k) + (1.0 - rho) * np.tile(self._pi, (k, 1))

    # ------------------------------------------------------------------
    # Conditional and marginal edge distributions
    # ------------------------------------------------------------------

    def edge_ticks(self, edge: Edge) -> int:
        """Free-flow traversal time of ``edge`` in grid ticks (>= 1)."""
        return max(1, int(round(edge.free_flow_time / self.config.resolution)))

    def edge_state_distribution(self, edge: Edge, state: int) -> DiscreteDistribution:
        """``P(travel time | congestion state)`` for one edge.

        A symmetric binomial spread centred at ``free_flow_ticks * multiplier``
        with half-width ``relative_spread * centre`` (at least one tick when
        the centre exceeds one tick).
        """
        if not 0 <= state < self.config.num_states:
            raise ValueError(f"state {state} out of range")
        key = (edge.id, state)
        cached = self._conditional_cache.get(key)
        if cached is not None:
            return cached
        multiplier = self.config.multipliers_for(edge.category)[state]
        centre = max(1, int(round(self.edge_ticks(edge) * multiplier)))
        width = int(round(self.config.relative_spread * centre))
        if self.config.relative_spread > 0 and centre > 1:
            width = max(width, 1)
        lo = max(1, centre - width)
        width = centre - lo  # clip the spread so support stays >= 1 tick
        if width == 0:
            dist = DiscreteDistribution.point(centre)
        else:
            dist = DiscreteDistribution(lo, _binomial_weights(width), normalize=False)
        self._conditional_cache[key] = dist
        return dist

    def edge_marginal(self, edge: Edge) -> DiscreteDistribution:
        """Marginal travel-time distribution of one edge (mixture over ``pi``)."""
        cached = self._marginal_cache.get(edge.id)
        if cached is not None:
            return cached
        components = [
            self.edge_state_distribution(edge, s) for s in range(self.config.num_states)
        ]
        dist = mixture(components, self._pi)
        self._marginal_cache[edge.id] = dist
        return dist

    def slice_marginal(
        self, edge: Edge, weights: Sequence[float]
    ) -> DiscreteDistribution:
        """Edge marginal under a non-stationary congestion-state mix.

        Time-of-day cost-table slices (peak / off-peak / night; see
        :mod:`repro.service.scenarios`) are the same conditional edge
        distributions mixed with a *slice-specific* state weighting instead
        of the stationary ``pi`` — rush hour loads the heavy states, night
        collapses onto free flow.  ``weights`` must have one non-negative
        entry per congestion state with positive sum (normalised here).
        """
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (self.config.num_states,):
            raise ValueError(
                f"weights must have one entry per congestion state "
                f"({self.config.num_states}), got shape {w.shape}"
            )
        if np.any(w < 0) or not np.all(np.isfinite(w)) or float(w.sum()) <= 0:
            raise ValueError(
                "weights must be non-negative, finite, with positive sum"
            )
        components = [
            self.edge_state_distribution(edge, s)
            for s in range(self.config.num_states)
        ]
        return mixture(components, w / float(w.sum()))

    def cost_update(
        self, edges: Sequence[Edge], state: int
    ) -> dict[int, DiscreteDistribution]:
        """Per-edge histogram deltas for one congestion feed event.

        The adapter behind :meth:`repro.service.CostUpdate.from_congestion`:
        a feed reporting that ``edges`` (an incident corridor, say) are
        currently in latent ``state`` translates into the state-conditioned
        histograms routing should serve until the next report.  The returned
        mapping feeds :meth:`repro.core.costs.EdgeCostTable.apply_deltas`
        directly (one version bump for the whole event).
        """
        if not 0 <= state < self.config.num_states:
            raise ValueError(f"state {state} out of range")
        if len(edges) == 0:
            raise ValueError("a cost update needs at least one edge")
        return {
            edge.id: self.edge_state_distribution(edge, state) for edge in edges
        }

    # ------------------------------------------------------------------
    # Exact joints and path distributions
    # ------------------------------------------------------------------

    def pair_joint(self, pair: EdgePair) -> JointDistribution:
        """Exact joint ``P(t1, t2)`` for a consecutive edge pair.

        ``P(t1, t2) = sum_s pi_s D1_s(t1) sum_s' T(s, s') D2_s'(t2)``.
        """
        transition = self.transition_matrix(pair.intersection)
        first = [
            self.edge_state_distribution(pair.first, s)
            for s in range(self.config.num_states)
        ]
        second = [
            self.edge_state_distribution(pair.second, s)
            for s in range(self.config.num_states)
        ]
        lo1 = min(d.min_value for d in first)
        hi1 = max(d.max_value for d in first)
        lo2 = min(d.min_value for d in second)
        hi2 = max(d.max_value for d in second)
        probs = np.zeros((hi1 - lo1 + 1, hi2 - lo2 + 1), dtype=np.float64)
        for s in range(self.config.num_states):
            row = np.zeros(hi1 - lo1 + 1)
            start = first[s].min_value - lo1
            row[start : start + first[s].support_size] = first[s].probs
            col = np.zeros(hi2 - lo2 + 1)
            for s2 in range(self.config.num_states):
                start2 = second[s2].min_value - lo2
                col[start2 : start2 + second[s2].support_size] += (
                    transition[s, s2] * second[s2].probs
                )
            probs += self._pi[s] * np.outer(row, col)
        return JointDistribution(lo1, lo2, probs, normalize=False)

    def pair_ground_truth(self, pair: EdgePair) -> DiscreteDistribution:
        """Exact distribution of ``t1 + t2`` for an edge pair."""
        return self.pair_joint(pair).total_cost()

    def path_distribution(self, edges: Sequence[Edge]) -> DiscreteDistribution:
        """Exact travel-time distribution of a whole path.

        Dynamic programming over the state chain: carry, per congestion
        state, the sub-distribution of accumulated time; at each intersection
        apply the transition matrix, then convolve each state's
        sub-distribution with that state's conditional edge distribution.
        This is the ground truth routing quality is judged against.
        """
        if len(edges) == 0:
            raise ValueError("path must contain at least one edge")
        k = self.config.num_states

        def state_convolve(sub: list[np.ndarray], offset: int, edge: Edge) -> tuple[list[np.ndarray], int]:
            conditionals = [self.edge_state_distribution(edge, s) for s in range(k)]
            lo = min(c.min_value for c in conditionals)
            hi = max(c.max_value for c in conditionals)
            width = hi - lo + 1
            out = []
            for s in range(k):
                c = conditionals[s]
                padded = np.zeros(width)
                padded[c.min_value - lo : c.min_value - lo + c.support_size] = c.probs
                out.append(np.convolve(sub[s], padded))
            return out, offset + lo

        sub: list[np.ndarray] = [self._pi[s] * np.ones(1) for s in range(k)]
        offset = 0
        sub, offset = state_convolve(sub, offset, edges[0])
        for previous, edge in zip(edges, edges[1:]):
            if previous.target != edge.source:
                raise ValueError("edges do not form a path")
            transition = self.transition_matrix(previous.target)
            size = max(arr.size for arr in sub)
            stacked = np.zeros((k, size))
            for s in range(k):
                stacked[s, : sub[s].size] = sub[s]
            mixed = transition.T @ stacked
            sub = [mixed[s] for s in range(k)]
            sub, offset = state_convolve(sub, offset, edge)
        total = sub[0]
        for s in range(1, k):
            total = total + sub[s]
        return DiscreteDistribution(offset, total, normalize=False)

    def path_probability_within(self, edges: Sequence[Edge], budget_ticks: int) -> float:
        """Ground-truth ``P(path cost <= budget)`` — the quality yardstick."""
        return self.path_distribution(edges).prob_within(budget_ticks)

    # ------------------------------------------------------------------
    # Sampling (synthetic trajectory generation)
    # ------------------------------------------------------------------

    def sample_path_times(
        self, edges: Sequence[Edge], rng: np.random.Generator
    ) -> list[int]:
        """Draw one vehicle's per-edge travel times (ticks) along ``edges``."""
        if len(edges) == 0:
            return []
        times: list[int] = []
        state = int(rng.choice(self.config.num_states, p=self._pi))
        times.append(self.edge_state_distribution(edges[0], state).sample(rng))
        for previous, edge in zip(edges, edges[1:]):
            if previous.target != edge.source:
                raise ValueError("edges do not form a path")
            if rng.random() >= self._rho[previous.target]:
                state = int(rng.choice(self.config.num_states, p=self._pi))
            times.append(self.edge_state_distribution(edge, state).sample(rng))
        return times

    def seconds_to_ticks(self, seconds: float) -> int:
        """Convert seconds to grid ticks (rounded)."""
        return int(round(seconds / self.config.resolution))

    def ticks_to_seconds(self, ticks: float) -> float:
        """Convert grid ticks back to seconds."""
        return float(ticks) * self.config.resolution
