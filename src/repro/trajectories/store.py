"""Trajectory store: the map-matched corpus with per-edge / per-pair indexes.

Plays the role of the paper's trajectory database: the training pipeline asks
it for edge pairs "with sufficient data" (the paper trains on 4000 such pairs
and tests on 1000), per-edge travel-time histograms, and the empirical joint
of each pair.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from ..histograms import DiscreteDistribution, JointDistribution
from .types import MatchedTrajectory

__all__ = ["TrajectoryStore"]

PairKey = tuple[int, int]


class TrajectoryStore:
    """In-memory corpus of map-matched trajectories with flat indexes.

    Indexes are maintained incrementally on :meth:`add`, so bulk loading a
    corpus is linear in the number of traversals.
    """

    def __init__(self) -> None:
        self._trajectories: list[MatchedTrajectory] = []
        self._edge_samples: dict[int, list[int]] = defaultdict(list)
        self._pair_samples: dict[PairKey, list[tuple[int, int]]] = defaultdict(list)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def add(self, trajectory: MatchedTrajectory) -> None:
        """Add one matched trip and index its traversals."""
        self._trajectories.append(trajectory)
        for traversal in trajectory.traversals:
            self._edge_samples[traversal.edge_id].append(traversal.travel_time)
        for first, second in trajectory.consecutive_pairs():
            self._pair_samples[(first.edge_id, second.edge_id)].append(
                (first.travel_time, second.travel_time)
            )

    def add_all(self, trajectories: Iterable[MatchedTrajectory]) -> None:
        for trajectory in trajectories:
            self.add(trajectory)

    # ------------------------------------------------------------------
    # Corpus statistics
    # ------------------------------------------------------------------

    @property
    def num_trajectories(self) -> int:
        return len(self._trajectories)

    @property
    def num_traversals(self) -> int:
        return sum(len(samples) for samples in self._edge_samples.values())

    def __len__(self) -> int:
        return len(self._trajectories)

    def __iter__(self) -> Iterator[MatchedTrajectory]:
        return iter(self._trajectories)

    # ------------------------------------------------------------------
    # Per-edge access
    # ------------------------------------------------------------------

    def edge_ids_with_data(self, *, min_samples: int = 1) -> list[int]:
        """Edges observed at least ``min_samples`` times, sorted by id."""
        return sorted(
            edge_id
            for edge_id, samples in self._edge_samples.items()
            if len(samples) >= min_samples
        )

    def edge_sample_count(self, edge_id: int) -> int:
        return len(self._edge_samples.get(edge_id, ()))

    def edge_samples(self, edge_id: int) -> list[int]:
        """Raw travel-time samples (ticks) for one edge."""
        return list(self._edge_samples.get(edge_id, ()))

    def edge_histogram(self, edge_id: int, *, min_samples: int = 1) -> DiscreteDistribution:
        """Empirical travel-time distribution of one edge.

        Raises ``ValueError`` below ``min_samples`` observations — the
        caller decides the sufficiency threshold, mirroring the paper's
        "edge pairs with sufficient data" criterion.
        """
        samples = self._edge_samples.get(edge_id, ())
        if len(samples) < min_samples:
            raise ValueError(
                f"edge {edge_id} has {len(samples)} samples, need {min_samples}"
            )
        return DiscreteDistribution.from_samples(samples)

    # ------------------------------------------------------------------
    # Per-pair access
    # ------------------------------------------------------------------

    def pair_keys_with_data(self, *, min_samples: int = 1) -> list[PairKey]:
        """Edge pairs observed at least ``min_samples`` times, sorted."""
        return sorted(
            key
            for key, samples in self._pair_samples.items()
            if len(samples) >= min_samples
        )

    def pair_sample_count(self, key: PairKey) -> int:
        return len(self._pair_samples.get(key, ()))

    def pair_samples(self, key: PairKey) -> list[tuple[int, int]]:
        """Raw ``(t1, t2)`` traversal pairs (ticks) for one edge pair."""
        return list(self._pair_samples.get(key, ()))

    def pair_joint(self, key: PairKey, *, min_samples: int = 1) -> JointDistribution:
        """Empirical joint distribution of one edge pair."""
        samples = self._pair_samples.get(key, ())
        if len(samples) < min_samples:
            raise ValueError(
                f"pair {key} has {len(samples)} samples, need {min_samples}"
            )
        return JointDistribution.from_samples(samples)

    def pair_total_cost(self, key: PairKey, *, min_samples: int = 1) -> DiscreteDistribution:
        """Empirical distribution of ``t1 + t2`` for one edge pair."""
        samples = self._pair_samples.get(key, ())
        if len(samples) < min_samples:
            raise ValueError(
                f"pair {key} has {len(samples)} samples, need {min_samples}"
            )
        return DiscreteDistribution.from_samples([a + b for a, b in samples])
