"""Trajectory value types: GPS traces and map-matched edge traversals."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["GpsPoint", "GpsTrajectory", "EdgeTraversal", "MatchedTrajectory"]


@dataclass(frozen=True, slots=True)
class GpsPoint:
    """One GPS fix: planar coordinates (metres) and a timestamp (seconds)."""

    t: float
    x: float
    y: float


@dataclass(frozen=True, slots=True)
class GpsTrajectory:
    """A raw GPS trace as recorded by a vehicle."""

    id: int
    points: tuple[GpsPoint, ...]

    def __post_init__(self) -> None:
        times = [p.t for p in self.points]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError(f"trajectory {self.id}: timestamps must be non-decreasing")

    @property
    def duration(self) -> float:
        """Total recorded duration in seconds (0 for empty traces)."""
        if len(self.points) < 2:
            return 0.0
        return self.points[-1].t - self.points[0].t

    def __len__(self) -> int:
        return len(self.points)


@dataclass(frozen=True, slots=True)
class EdgeTraversal:
    """One traversal of one edge.

    ``travel_time`` is in grid ticks (see the congestion model's
    ``resolution``); ``enter_time`` is in ticks since the trip start.
    """

    edge_id: int
    enter_time: int
    travel_time: int

    def __post_init__(self) -> None:
        if self.travel_time < 1:
            raise ValueError(f"traversal of edge {self.edge_id}: travel time must be >= 1 tick")


@dataclass(frozen=True, slots=True)
class MatchedTrajectory:
    """A map-matched trip: the edge sequence with per-edge travel times."""

    id: int
    traversals: tuple[EdgeTraversal, ...]

    @property
    def edge_ids(self) -> tuple[int, ...]:
        return tuple(t.edge_id for t in self.traversals)

    @property
    def total_travel_time(self) -> int:
        """Trip duration in ticks."""
        return sum(t.travel_time for t in self.traversals)

    def consecutive_pairs(self) -> list[tuple[EdgeTraversal, EdgeTraversal]]:
        """Adjacent traversal pairs — the unit of pair-statistics extraction."""
        return list(zip(self.traversals, self.traversals[1:]))

    def __len__(self) -> int:
        return len(self.traversals)

    @classmethod
    def from_times(
        cls, trip_id: int, edge_ids: Sequence[int], travel_times: Sequence[int]
    ) -> "MatchedTrajectory":
        """Build from parallel edge-id / travel-time sequences."""
        if len(edge_ids) != len(travel_times):
            raise ValueError("edge_ids and travel_times must have equal length")
        traversals = []
        clock = 0
        for edge_id, travel_time in zip(edge_ids, travel_times):
            traversals.append(EdgeTraversal(int(edge_id), clock, int(travel_time)))
            clock += int(travel_time)
        return cls(trip_id, tuple(traversals))
