"""HMM map matching: raw GPS traces to edge sequences.

The paper's histograms are built from map-matched GPS trajectories.  We
implement the standard hidden-Markov matcher (Newson & Krumm style): hidden
states are candidate edges near each fix, emission likelihood is Gaussian in
the point-to-edge distance, and transitions prefer candidates whose network
connection distance agrees with the distance the vehicle actually moved.
Viterbi decoding yields the most likely edge sequence, which is then
compressed into per-edge traversals with travel times allocated from the fix
timestamps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..network import Edge, GridIndex, RoadNetwork, free_flow_weight
from ..network.paths import dijkstra
from .types import EdgeTraversal, GpsTrajectory, MatchedTrajectory

__all__ = ["MatcherConfig", "HmmMapMatcher"]


@dataclass(frozen=True)
class MatcherConfig:
    """Map-matcher tuning parameters.

    ``gps_noise_std`` should match the emitter's noise level; ``beta`` scales
    the transition penalty on the mismatch between great-circle displacement
    and network routing distance (larger = more permissive).
    """

    candidate_radius: float = 60.0
    max_candidates: int = 8
    gps_noise_std: float = 10.0
    beta: float = 30.0

    def __post_init__(self) -> None:
        if self.candidate_radius <= 0:
            raise ValueError("candidate_radius must be positive")
        if self.max_candidates < 1:
            raise ValueError("max_candidates must be >= 1")
        if self.gps_noise_std <= 0:
            raise ValueError("gps_noise_std must be positive")
        if self.beta <= 0:
            raise ValueError("beta must be positive")


class HmmMapMatcher:
    """Viterbi map matcher over a road network."""

    def __init__(
        self,
        network: RoadNetwork,
        *,
        index: GridIndex | None = None,
        config: MatcherConfig | None = None,
        resolution: float = 5.0,
    ) -> None:
        self.network = network
        self.config = config or MatcherConfig()
        self.index = index or GridIndex(network, cell_size=max(self.config.candidate_radius * 4, 200.0))
        self.resolution = float(resolution)
        self._route_cache: dict[tuple[int, int], float] = {}

    # ------------------------------------------------------------------
    # HMM pieces
    # ------------------------------------------------------------------

    def _candidates(self, x: float, y: float) -> list[tuple[Edge, float]]:
        hits = self.index.edges_within(x, y, self.config.candidate_radius)
        return hits[: self.config.max_candidates]

    def _emission_logprob(self, distance: float) -> float:
        sigma = self.config.gps_noise_std
        return -0.5 * (distance / sigma) ** 2

    def _network_distance(self, from_edge: Edge, to_edge: Edge) -> float:
        """Free-flow network distance (metres) from ``from_edge``'s target to
        ``to_edge``'s source, cached; staying on the same edge costs zero."""
        if from_edge.id == to_edge.id:
            return 0.0
        if from_edge.target == to_edge.source:
            return 0.0
        key = (from_edge.target, to_edge.source)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        dist, _ = dijkstra(
            self.network,
            from_edge.target,
            weight=lambda e: e.length,
            targets={to_edge.source},
        )
        value = dist.get(to_edge.source, math.inf)
        self._route_cache[key] = value
        return value

    def _transition_logprob(
        self, from_edge: Edge, to_edge: Edge, moved: float
    ) -> float:
        """Newson–Krumm style transition: penalise the gap between network
        routing distance and the straight-line displacement of the fix pair."""
        route = self._network_distance(from_edge, to_edge)
        if math.isinf(route):
            return -math.inf
        return -abs(route - moved) / self.config.beta

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------

    def match_edges(self, trajectory: GpsTrajectory) -> list[Edge]:
        """Viterbi-decode the most likely edge per fix, compressed.

        Returns the deduplicated edge sequence; raises ``ValueError`` when no
        fix has any candidate edge (trace is off-network).
        """
        observations = [
            (point, self._candidates(point.x, point.y)) for point in trajectory.points
        ]
        observations = [(p, c) for p, c in observations if c]
        if not observations:
            raise ValueError(f"trajectory {trajectory.id}: no candidates near any fix")

        # Viterbi over the filtered fixes.
        first_point, first_cands = observations[0]
        scores: dict[int, float] = {
            edge.id: self._emission_logprob(d) for edge, d in first_cands
        }
        cand_edges: dict[int, Edge] = {edge.id: edge for edge, _ in first_cands}
        back: list[dict[int, int]] = [{}]
        previous_point = first_point
        previous_ids = list(scores)

        for point, candidates in observations[1:]:
            moved = math.hypot(point.x - previous_point.x, point.y - previous_point.y)
            new_scores: dict[int, float] = {}
            pointers: dict[int, int] = {}
            for edge, distance in candidates:
                cand_edges[edge.id] = edge
                emission = self._emission_logprob(distance)
                best_prev, best_score = None, -math.inf
                for prev_id in previous_ids:
                    transition = self._transition_logprob(
                        cand_edges[prev_id], edge, moved
                    )
                    score = scores[prev_id] + transition
                    if score > best_score:
                        best_prev, best_score = prev_id, score
                if best_prev is None:
                    continue
                new_scores[edge.id] = best_score + emission
                pointers[edge.id] = best_prev
            if not new_scores:
                # Broken chain (e.g. GPS gap): restart scoring at this fix.
                new_scores = {
                    edge.id: self._emission_logprob(d) for edge, d in candidates
                }
                pointers = {}
            scores = new_scores
            previous_ids = list(scores)
            back.append(pointers)
            previous_point = point

        # Backtrack.
        current = max(scores, key=lambda edge_id: scores[edge_id])
        sequence = [current]
        for pointers in reversed(back[1:]):
            nxt = pointers.get(current)
            if nxt is None:
                break
            current = nxt
            sequence.append(current)
        sequence.reverse()

        edges: list[Edge] = []
        for edge_id in sequence:
            if not edges or edges[-1].id != edge_id:
                edges.append(cand_edges[edge_id])
        return self._stitch(edges)

    def _stitch(self, edges: list[Edge]) -> list[Edge]:
        """Insert shortest-path gap edges so the output is a connected path."""
        if len(edges) < 2:
            return edges
        out = [edges[0]]
        for edge in edges[1:]:
            previous = out[-1]
            if previous.target != edge.source:
                dist, parent = dijkstra(
                    self.network,
                    previous.target,
                    weight=lambda e: e.length,
                    targets={edge.source},
                )
                if edge.source in dist:
                    from ..network.paths import reconstruct_path

                    out.extend(reconstruct_path(parent, previous.target, edge.source))
                else:
                    # Unbridgeable gap: drop the stranded candidate.
                    continue
            out.append(edge)
        return out

    def match(self, trajectory: GpsTrajectory) -> MatchedTrajectory:
        """Full matching: edge sequence plus per-edge travel-time allocation.

        The trace duration is distributed over the matched edges
        proportionally to free-flow traversal times, then rounded to grid
        ticks (>= 1 per edge).
        """
        edges = self.match_edges(trajectory)
        if not edges:
            raise ValueError(f"trajectory {trajectory.id}: no edges matched")
        duration = max(trajectory.duration, self.resolution * len(edges))
        weights = [free_flow_weight(edge) for edge in edges]
        total_weight = sum(weights)
        traversals = []
        clock = 0
        for edge, weight in zip(edges, weights):
            seconds = duration * weight / total_weight
            ticks = max(1, int(round(seconds / self.resolution)))
            traversals.append(EdgeTraversal(edge.id, clock, ticks))
            clock += ticks
        return MatchedTrajectory(trajectory.id, tuple(traversals))
