"""HMM map matching: raw GPS traces to edge sequences.

The paper's histograms are built from map-matched GPS trajectories.  We
implement the standard hidden-Markov matcher (Newson & Krumm style): hidden
states are candidate edges near each fix, emission likelihood is Gaussian in
the point-to-edge distance, and transitions prefer candidates whose network
connection distance agrees with the distance the vehicle actually moved.
Viterbi decoding yields the most likely edge sequence, which is then
compressed into per-edge traversals with travel times allocated from the fix
timestamps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..network import Edge, GridIndex, RoadNetwork, free_flow_weight
from ..network.paths import dijkstra
from .types import EdgeTraversal, GpsTrajectory, MatchedTrajectory

__all__ = ["MatcherConfig", "HmmMapMatcher"]


@dataclass(frozen=True)
class MatcherConfig:
    """Map-matcher tuning parameters.

    ``gps_noise_std`` should match the emitter's noise level; ``beta`` scales
    the transition penalty on the mismatch between great-circle displacement
    and network routing distance (larger = more permissive).
    """

    candidate_radius: float = 60.0
    max_candidates: int = 8
    gps_noise_std: float = 10.0
    beta: float = 30.0

    def __post_init__(self) -> None:
        if self.candidate_radius <= 0:
            raise ValueError("candidate_radius must be positive")
        if self.max_candidates < 1:
            raise ValueError("max_candidates must be >= 1")
        if self.gps_noise_std <= 0:
            raise ValueError("gps_noise_std must be positive")
        if self.beta <= 0:
            raise ValueError("beta must be positive")


class HmmMapMatcher:
    """Viterbi map matcher over a road network."""

    def __init__(
        self,
        network: RoadNetwork,
        *,
        index: GridIndex | None = None,
        config: MatcherConfig | None = None,
        resolution: float = 5.0,
    ) -> None:
        self.network = network
        self.config = config or MatcherConfig()
        self.index = index or GridIndex(network, cell_size=max(self.config.candidate_radius * 4, 200.0))
        self.resolution = float(resolution)
        self._route_cache: dict[tuple[int, int], float] = {}

    # ------------------------------------------------------------------
    # HMM pieces
    # ------------------------------------------------------------------

    def _candidates(self, x: float, y: float) -> list[tuple[Edge, float]]:
        hits = self.index.edges_within(x, y, self.config.candidate_radius)
        return hits[: self.config.max_candidates]

    def _emission_logprob(self, distance: float) -> float:
        sigma = self.config.gps_noise_std
        return -0.5 * (distance / sigma) ** 2

    def _projection(self, edge: Edge, x: float, y: float) -> float:
        """Distance along ``edge`` (from its source) of the fix's projection."""
        source = self.network.vertex(edge.source)
        target = self.network.vertex(edge.target)
        dx, dy = target.x - source.x, target.y - source.y
        norm_sq = dx * dx + dy * dy
        if norm_sq <= 0.0:
            return 0.0
        t = ((x - source.x) * dx + (y - source.y) * dy) / norm_sq
        return min(1.0, max(0.0, t)) * math.hypot(dx, dy)

    def _vertex_distance(self, from_vertex: int, to_vertex: int) -> float:
        """Free-flow network distance (metres) between vertices, cached."""
        if from_vertex == to_vertex:
            return 0.0
        key = (from_vertex, to_vertex)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        dist, _ = dijkstra(
            self.network,
            from_vertex,
            weight=lambda e: e.length,
            targets={to_vertex},
        )
        value = dist.get(to_vertex, math.inf)
        self._route_cache[key] = value
        return value

    def _route_distance(
        self, from_edge: Edge, from_offset: float, to_edge: Edge, to_offset: float
    ) -> float:
        """Driving distance between two projected positions.

        Newson & Krumm compare the displacement of a fix pair against the
        network distance between the *projections* on the candidate edges —
        not between edge endpoints.  The distinction matters: with endpoint
        distances, staying on the current edge is penalised exactly as much
        as hopping to any adjacent edge, and the decoder wanders onto
        cross-streets that stitching then pads into long detours.
        """
        if from_edge.id == to_edge.id and to_offset >= from_offset:
            return to_offset - from_offset
        segment_length = math.hypot(
            self.network.vertex(from_edge.target).x
            - self.network.vertex(from_edge.source).x,
            self.network.vertex(from_edge.target).y
            - self.network.vertex(from_edge.source).y,
        )
        return (
            (segment_length - from_offset)
            + self._vertex_distance(from_edge.target, to_edge.source)
            + to_offset
        )

    def _transition_logprob(
        self,
        from_edge: Edge,
        from_offset: float,
        to_edge: Edge,
        to_offset: float,
        moved: float,
    ) -> float:
        """Newson–Krumm style transition: penalise the gap between network
        routing distance and the straight-line displacement of the fix pair."""
        route = self._route_distance(from_edge, from_offset, to_edge, to_offset)
        if math.isinf(route):
            return -math.inf
        return -abs(route - moved) / self.config.beta

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------

    def match_edges(self, trajectory: GpsTrajectory) -> list[Edge]:
        """Viterbi-decode the most likely edge per fix, compressed.

        Returns the deduplicated edge sequence; raises ``ValueError`` when no
        fix has any candidate edge (trace is off-network).
        """
        observations = []
        for point in trajectory.points:
            candidates = [
                (edge, distance, self._projection(edge, point.x, point.y))
                for edge, distance in self._candidates(point.x, point.y)
            ]
            if candidates:
                observations.append((point, candidates))
        if not observations:
            raise ValueError(f"trajectory {trajectory.id}: no candidates near any fix")

        # Viterbi over the filtered fixes.
        first_point, first_cands = observations[0]
        scores: dict[int, float] = {
            edge.id: self._emission_logprob(d) for edge, d, _ in first_cands
        }
        cand_edges: dict[int, Edge] = {edge.id: edge for edge, _, _ in first_cands}
        offsets: dict[int, float] = {edge.id: o for edge, _, o in first_cands}
        back: list[dict[int, int]] = [{}]
        previous_point = first_point
        previous_ids = list(scores)

        for point, candidates in observations[1:]:
            moved = math.hypot(point.x - previous_point.x, point.y - previous_point.y)
            new_scores: dict[int, float] = {}
            new_offsets: dict[int, float] = {}
            pointers: dict[int, int] = {}
            for edge, distance, offset in candidates:
                cand_edges[edge.id] = edge
                emission = self._emission_logprob(distance)
                best_prev, best_score = None, -math.inf
                for prev_id in previous_ids:
                    transition = self._transition_logprob(
                        cand_edges[prev_id], offsets[prev_id], edge, offset, moved
                    )
                    score = scores[prev_id] + transition
                    if score > best_score:
                        best_prev, best_score = prev_id, score
                if best_prev is None:
                    continue
                new_scores[edge.id] = best_score + emission
                new_offsets[edge.id] = offset
                pointers[edge.id] = best_prev
            if not new_scores:
                # Broken chain (e.g. GPS gap): restart scoring at this fix.
                new_scores = {
                    edge.id: self._emission_logprob(d) for edge, d, _ in candidates
                }
                new_offsets = {edge.id: o for edge, _, o in candidates}
                pointers = {}
            scores = new_scores
            offsets = new_offsets
            previous_ids = list(scores)
            back.append(pointers)
            previous_point = point

        # Backtrack.
        current = max(scores, key=lambda edge_id: scores[edge_id])
        sequence = [current]
        for pointers in reversed(back[1:]):
            nxt = pointers.get(current)
            if nxt is None:
                break
            current = nxt
            sequence.append(current)
        sequence.reverse()

        edges: list[Edge] = []
        for edge_id in sequence:
            if not edges or edges[-1].id != edge_id:
                edges.append(cand_edges[edge_id])
        edges = self._stitch(edges)
        return self._trim(
            edges, observations[0][0], observations[-1][0]
        )

    def _trim(self, edges: list[Edge], first_point, last_point) -> list[Edge]:
        """Drop head/tail edges the vehicle never actually traversed.

        A fix at a vertex projects equally well onto every edge touching it;
        an edge *into* the origin (or *out of* the destination) then ties
        with the true first (last) edge and pads the match by one edge whose
        travel time the trip never paid.  The tell: the terminal fix
        projects at the very end (start) of that edge, i.e. the traversed
        span is ~zero.  Tolerance is the expected GPS noise.
        """
        slack = 2.0 * self.config.gps_noise_std
        while len(edges) > 1:
            head = edges[0]
            length = math.hypot(
                self.network.vertex(head.target).x
                - self.network.vertex(head.source).x,
                self.network.vertex(head.target).y
                - self.network.vertex(head.source).y,
            )
            offset = self._projection(head, first_point.x, first_point.y)
            if offset >= length - slack and head.target == edges[1].source:
                edges = edges[1:]
            else:
                break
        while len(edges) > 1:
            tail = edges[-1]
            offset = self._projection(tail, last_point.x, last_point.y)
            if offset <= slack and edges[-2].target == tail.source:
                edges = edges[:-1]
            else:
                break
        return edges

    def _stitch(self, edges: list[Edge]) -> list[Edge]:
        """Insert shortest-path gap edges so the output is a connected path."""
        if len(edges) < 2:
            return edges
        out = [edges[0]]
        for edge in edges[1:]:
            previous = out[-1]
            if previous.target != edge.source:
                dist, parent = dijkstra(
                    self.network,
                    previous.target,
                    weight=lambda e: e.length,
                    targets={edge.source},
                )
                if edge.source in dist:
                    from ..network.paths import reconstruct_path

                    out.extend(reconstruct_path(parent, previous.target, edge.source))
                else:
                    # Unbridgeable gap: drop the stranded candidate.
                    continue
            out.append(edge)
        return out

    def match(self, trajectory: GpsTrajectory) -> MatchedTrajectory:
        """Full matching: edge sequence plus per-edge travel-time allocation.

        The trace duration is distributed over the matched edges
        proportionally to free-flow traversal times, then rounded to grid
        ticks (>= 1 per edge).
        """
        edges = self.match_edges(trajectory)
        if not edges:
            raise ValueError(f"trajectory {trajectory.id}: no edges matched")
        duration = max(trajectory.duration, self.resolution * len(edges))
        weights = [free_flow_weight(edge) for edge in edges]
        total_weight = sum(weights)
        traversals = []
        clock = 0
        for edge, weight in zip(edges, weights):
            seconds = duration * weight / total_weight
            ticks = max(1, int(round(seconds / self.resolution)))
            traversals.append(EdgeTraversal(edge.id, clock, ticks))
            clock += ticks
        return MatchedTrajectory(trajectory.id, tuple(traversals))
