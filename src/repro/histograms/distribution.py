"""Discrete travel-time distributions on a uniform time grid.

The whole reproduction represents uncertain travel times the way the paper's
road-network model does: as histograms.  Internally every histogram lives on a
uniform integer grid whose unit is a *tick* of ``resolution`` seconds.  A
distribution is a pair ``(offset, probs)`` where ``probs[i]`` is the
probability that the travel time equals ``(offset + i) * resolution`` seconds.

Keeping every distribution on the same grid makes the operations the paper
relies on exact and cheap:

* **convolution** of two distributions (independent edge combination) is a
  plain discrete convolution with offsets adding,
* **cost shifting** (pruning rule (c)) is an integer add to ``offset``,
* **stochastic dominance** (pruning rule (d)) is a CDF comparison on the
  aligned grid,
* ``P(cost <= budget)`` — the objective of probabilistic budget routing — is a
  prefix sum.

Coarse presentation-level histograms such as the paper's 10-minute buckets are
produced with :meth:`DiscreteDistribution.rebin`.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

__all__ = ["DiscreteDistribution"]

#: Probability mass below this threshold is treated as zero when trimming.
_MASS_EPSILON = 1e-12


def _as_probability_array(probs: Sequence[float] | np.ndarray) -> np.ndarray:
    """Validate and copy ``probs`` into a float64 numpy array."""
    arr = np.asarray(probs, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"probability vector must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError("probability vector must be non-empty")
    if np.any(arr < -_MASS_EPSILON):
        raise ValueError("probabilities must be non-negative")
    if not np.all(np.isfinite(arr)):
        raise ValueError("probabilities must be finite")
    return np.clip(arr, 0.0, None)


class DiscreteDistribution:
    """A probability distribution over travel times on a uniform tick grid.

    Parameters
    ----------
    offset:
        Index of the first grid cell; the smallest possible travel time is
        ``offset`` ticks.
    probs:
        Probability of each consecutive tick starting at ``offset``.  The
        vector is normalised on construction (its sum must be positive).
    normalize:
        When ``False`` the caller asserts ``probs`` already sums to one and
        normalisation is skipped (used on hot paths).

    Notes
    -----
    Instances are immutable: all operations return new distributions.  The
    probability array is copied on construction and flagged read-only.
    """

    __slots__ = ("_offset", "_probs")

    def __init__(
        self,
        offset: int,
        probs: Sequence[float] | np.ndarray,
        *,
        normalize: bool = True,
    ) -> None:
        arr = _as_probability_array(probs)
        if normalize:
            total = float(arr.sum())
            if total <= 0.0:
                raise ValueError("probability vector must have positive mass")
            if not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-9):
                arr = arr / total
        # Trim leading/trailing zero mass so that support bounds are tight.
        nonzero = np.flatnonzero(arr > _MASS_EPSILON)
        if nonzero.size == 0:
            raise ValueError("probability vector must have positive mass")
        first, last = int(nonzero[0]), int(nonzero[-1])
        arr = arr[first : last + 1]
        self._offset = int(offset) + first
        self._probs = arr
        self._probs.flags.writeable = False

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def point(cls, value: int) -> "DiscreteDistribution":
        """A deterministic travel time of exactly ``value`` ticks."""
        return cls(value, np.ones(1), normalize=False)

    @classmethod
    def from_mapping(cls, mapping: Mapping[int, float]) -> "DiscreteDistribution":
        """Build a distribution from ``{tick: probability}``.

        Example
        -------
        >>> d = DiscreteDistribution.from_mapping({30: 0.5, 40: 0.5})
        >>> d.mean()
        35.0
        """
        if not mapping:
            raise ValueError("mapping must be non-empty")
        ticks = sorted(int(t) for t in mapping)
        lo, hi = ticks[0], ticks[-1]
        probs = np.zeros(hi - lo + 1, dtype=np.float64)
        for tick, p in mapping.items():
            probs[int(tick) - lo] += float(p)
        return cls(lo, probs)

    @classmethod
    def from_samples(
        cls, samples: Iterable[float], *, resolution: float = 1.0
    ) -> "DiscreteDistribution":
        """Build an empirical distribution from raw travel-time samples.

        ``samples`` are given in the same unit as ``resolution`` (typically
        seconds); each sample is rounded to the nearest tick.
        """
        values = np.asarray(list(samples), dtype=np.float64)
        if values.size == 0:
            raise ValueError("need at least one sample")
        if np.any(values < 0):
            raise ValueError("travel times must be non-negative")
        ticks = np.rint(values / float(resolution)).astype(np.int64)
        lo, hi = int(ticks.min()), int(ticks.max())
        probs = np.bincount(ticks - lo, minlength=hi - lo + 1).astype(np.float64)
        return cls(lo, probs)

    @classmethod
    def uniform(cls, lo: int, hi: int) -> "DiscreteDistribution":
        """Uniform distribution over the inclusive tick range ``[lo, hi]``."""
        if hi < lo:
            raise ValueError("hi must be >= lo")
        return cls(lo, np.full(hi - lo + 1, 1.0), normalize=True)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def offset(self) -> int:
        """Tick index of the first support cell (the minimum travel time)."""
        return self._offset

    @property
    def probs(self) -> np.ndarray:
        """Read-only probability vector aligned at :attr:`offset`."""
        return self._probs

    @property
    def support_size(self) -> int:
        """Number of grid cells between min and max support, inclusive."""
        return int(self._probs.size)

    @property
    def min_value(self) -> int:
        """Smallest travel time with positive probability (ticks)."""
        return self._offset

    @property
    def max_value(self) -> int:
        """Largest travel time with positive probability (ticks)."""
        return self._offset + self._probs.size - 1

    def __len__(self) -> int:
        return self.support_size

    def __iter__(self) -> Iterator[tuple[int, float]]:
        """Iterate ``(tick, probability)`` pairs over the support."""
        for i, p in enumerate(self._probs):
            if p > _MASS_EPSILON:
                yield self._offset + i, float(p)

    def to_mapping(self) -> dict[int, float]:
        """Return ``{tick: probability}`` for the support."""
        return dict(self)

    def prob_at(self, tick: int) -> float:
        """Probability that the travel time equals exactly ``tick``."""
        idx = int(tick) - self._offset
        if idx < 0 or idx >= self._probs.size:
            return 0.0
        return float(self._probs[idx])

    # ------------------------------------------------------------------
    # Moments and summary statistics
    # ------------------------------------------------------------------

    def mean(self) -> float:
        """Expected travel time in ticks."""
        values = self._offset + np.arange(self._probs.size)
        return float(np.dot(values, self._probs))

    def variance(self) -> float:
        """Variance of the travel time in ticks squared."""
        values = self._offset + np.arange(self._probs.size, dtype=np.float64)
        mu = float(np.dot(values, self._probs))
        return float(np.dot((values - mu) ** 2, self._probs))

    def std(self) -> float:
        """Standard deviation of the travel time in ticks."""
        return math.sqrt(max(self.variance(), 0.0))

    def entropy(self) -> float:
        """Shannon entropy in nats."""
        p = self._probs[self._probs > _MASS_EPSILON]
        return float(-np.dot(p, np.log(p)))

    def mode(self) -> int:
        """Tick with the highest probability (smallest on ties)."""
        return self._offset + int(np.argmax(self._probs))

    # ------------------------------------------------------------------
    # CDF, quantiles and the routing objective
    # ------------------------------------------------------------------

    def cdf(self) -> np.ndarray:
        """Cumulative probabilities aligned at :attr:`offset`."""
        return np.cumsum(self._probs)

    def cdf_at(self, tick: int) -> float:
        """``P(travel time <= tick)``."""
        idx = int(tick) - self._offset
        if idx < 0:
            return 0.0
        if idx >= self._probs.size:
            return 1.0
        return float(np.sum(self._probs[: idx + 1]))

    def prob_within(self, budget: int) -> float:
        """``P(travel time <= budget)`` — the PBR objective for one path."""
        return self.cdf_at(budget)

    def quantile(self, q: float) -> int:
        """Smallest tick ``t`` such that ``P(X <= t) >= q``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile level must be in [0, 1]")
        if q == 0.0:
            return self.min_value
        cum = np.cumsum(self._probs)
        idx = int(np.searchsorted(cum, q - 1e-12, side="left"))
        idx = min(idx, self._probs.size - 1)
        return self._offset + idx

    # ------------------------------------------------------------------
    # Algebraic operations
    # ------------------------------------------------------------------

    def shift(self, ticks: int) -> "DiscreteDistribution":
        """Translate the distribution by ``ticks`` (cost shifting, rule (c)).

        Shifting never changes the shape of the distribution, so pruning
        comparisons after a shift are exact.
        """
        return DiscreteDistribution(self._offset + int(ticks), self._probs, normalize=False)

    def convolve(self, other: "DiscreteDistribution") -> "DiscreteDistribution":
        """Distribution of the sum of two *independent* travel times.

        This is the classical path-cost combiner the paper improves on: it is
        only correct when the two edges are spatially independent.
        """
        probs = np.convolve(self._probs, other._probs)
        return DiscreteDistribution(self._offset + other._offset, probs, normalize=False)

    def __add__(self, other: object) -> "DiscreteDistribution":
        if isinstance(other, DiscreteDistribution):
            return self.convolve(other)
        if isinstance(other, (int, np.integer)):
            return self.shift(int(other))
        return NotImplemented

    __radd__ = __add__

    def rebin(self, factor: int, *, anchor: int = 0) -> "DiscreteDistribution":
        """Coarsen to buckets of ``factor`` ticks.

        Mass of tick ``t`` goes into the bucket whose representative tick is
        ``anchor + floor((t - anchor) / factor) * factor`` — the bucket's left
        boundary, matching the paper's ``[40, 50)``-style bucket notation.
        """
        if factor < 1:
            raise ValueError("rebin factor must be >= 1")
        if factor == 1:
            return self
        ticks = self._offset + np.arange(self._probs.size)
        buckets = anchor + ((ticks - anchor) // factor) * factor
        lo = int(buckets[0])
        idx = (buckets - lo) // factor
        out = np.zeros(int(idx[-1]) + 1, dtype=np.float64)
        np.add.at(out, idx, self._probs)
        # Resulting distribution lives on the coarse grid expressed in the
        # original tick unit: cells are spaced ``factor`` apart, so expand to
        # the fine grid by placing mass at the bucket boundary.
        fine = np.zeros((out.size - 1) * factor + 1, dtype=np.float64)
        fine[:: factor] = out
        return DiscreteDistribution(lo, fine, normalize=False)

    def truncate(self, max_support: int) -> "DiscreteDistribution":
        """Bound the support size, folding excess tail mass into the last cell.

        Used to keep routing labels at a fixed resolution budget; folding the
        tail (rather than dropping it) keeps the distribution a valid,
        *pessimistic-at-the-tail* approximation whose total mass is exact.
        """
        if max_support < 1:
            raise ValueError("max_support must be >= 1")
        if self._probs.size <= max_support:
            return self
        head = self._probs[: max_support].copy()
        head[-1] += float(self._probs[max_support:].sum())
        return DiscreteDistribution(self._offset, head, normalize=False)

    def normalize_tail(self, max_support: int) -> "DiscreteDistribution":
        """Bound the support size by *dropping* the tail and renormalising."""
        if max_support < 1:
            raise ValueError("max_support must be >= 1")
        if self._probs.size <= max_support:
            return self
        return DiscreteDistribution(self._offset, self._probs[:max_support], normalize=True)

    def sample(self, rng: np.random.Generator, size: int | None = None) -> np.ndarray | int:
        """Draw travel-time samples (ticks) from the distribution."""
        values = self._offset + np.arange(self._probs.size)
        p = self._probs / self._probs.sum()
        out = rng.choice(values, size=size, p=p)
        if size is None:
            return int(out)
        return out.astype(np.int64)

    # ------------------------------------------------------------------
    # Grid alignment and comparison
    # ------------------------------------------------------------------

    def aligned_with(
        self, other: "DiscreteDistribution"
    ) -> tuple[int, np.ndarray, np.ndarray]:
        """Express both distributions on a common grid.

        Returns ``(offset, p, q)`` where ``p`` and ``q`` have equal length
        starting at ``offset``.
        """
        lo = min(self.min_value, other.min_value)
        hi = max(self.max_value, other.max_value)
        size = hi - lo + 1
        p = np.zeros(size, dtype=np.float64)
        q = np.zeros(size, dtype=np.float64)
        p[self._offset - lo : self._offset - lo + self._probs.size] = self._probs
        q[other._offset - lo : other._offset - lo + other._probs.size] = other._probs
        return lo, p, q

    def allclose(self, other: "DiscreteDistribution", *, atol: float = 1e-9) -> bool:
        """True when the two distributions agree up to ``atol`` per cell."""
        _, p, q = self.aligned_with(other)
        return bool(np.allclose(p, q, atol=atol, rtol=0.0))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiscreteDistribution):
            return NotImplemented
        return self.allclose(other, atol=1e-12)

    def __hash__(self) -> int:  # pragma: no cover - defensive
        return hash((self._offset, self._probs.tobytes()))

    def __repr__(self) -> str:
        pairs = ", ".join(f"{t}: {p:.3f}" for t, p in list(self)[:6])
        suffix = ", ..." if self.support_size > 6 else ""
        return f"DiscreteDistribution({{{pairs}{suffix}}})"
