"""Discrete travel-time distributions on a uniform time grid.

The whole reproduction represents uncertain travel times the way the paper's
road-network model does: as histograms.  Internally every histogram lives on a
uniform integer grid whose unit is a *tick* of ``resolution`` seconds.  A
distribution is a pair ``(offset, probs)`` where ``probs[i]`` is the
probability that the travel time equals ``(offset + i) * resolution`` seconds.

Keeping every distribution on the same grid makes the operations the paper
relies on exact and cheap:

* **convolution** of two distributions (independent edge combination) is a
  plain discrete convolution with offsets adding,
* **cost shifting** (pruning rule (c)) is an integer add to ``offset``,
* **stochastic dominance** (pruning rule (d)) is a CDF comparison on the
  aligned grid,
* ``P(cost <= budget)`` — the objective of probabilistic budget routing — is a
  prefix sum.

Coarse presentation-level histograms such as the paper's 10-minute buckets are
produced with :meth:`DiscreteDistribution.rebin`.

Hot-path design (see PERFORMANCE.md)
------------------------------------
Instances are immutable, which lets every distribution lazily cache its
prefix-sum: :meth:`cdf` is computed once, and :meth:`cdf_at`,
:meth:`prob_within`, :meth:`quantile` and :meth:`sample` become O(1)/O(log n)
array reads afterwards.  Construction has a zero-copy fast path for trusted
internal arrays (already read-only float64 with ``normalize=False``), and
:meth:`convolve` switches to an FFT above a support-size crossover.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

__all__ = ["DiscreteDistribution"]

#: Probability mass below this threshold is treated as zero when trimming.
_MASS_EPSILON = 1e-12

#: FFT convolution pays off only when the direct O(n*m) work is large; below
#: the crossover ``np.convolve`` (exact, cache-friendly) wins.  The routing
#: search clips label supports near the budget, so typical searches stay on
#: the exact path and results are reproducible bit-for-bit.
_FFT_MIN_SIZE = 32
_FFT_MIN_WORK = 1 << 18

#: Shared, grow-only ``arange`` buffer so moments never allocate index
#: vectors; read-only views of it are handed out per support size.
_INDEX_CACHE = np.arange(256, dtype=np.float64)
_INDEX_CACHE.flags.writeable = False


def _indices(n: int) -> np.ndarray:
    """Read-only ``[0, 1, ..., n-1]`` float view from the shared buffer."""
    global _INDEX_CACHE
    cache = _INDEX_CACHE
    if cache.size < n:
        cache = np.arange(max(n, 2 * cache.size), dtype=np.float64)
        cache.flags.writeable = False
        _INDEX_CACHE = cache
    return cache[:n]


def _as_probability_array(probs: Sequence[float] | np.ndarray) -> np.ndarray:
    """Validate and copy ``probs`` into a float64 numpy array."""
    arr = np.asarray(probs, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"probability vector must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError("probability vector must be non-empty")
    if np.any(arr < -_MASS_EPSILON):
        raise ValueError("probabilities must be non-negative")
    if not np.all(np.isfinite(arr)):
        raise ValueError("probabilities must be finite")
    return np.clip(arr, 0.0, None)


def _fft_convolve(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Linear convolution via real FFTs (used above the size crossover)."""
    size = p.size + q.size - 1
    fft_size = 1 << (size - 1).bit_length()
    out = np.fft.irfft(np.fft.rfft(p, fft_size) * np.fft.rfft(q, fft_size), fft_size)
    out = out[:size]
    # Round-off can leave values a few ulp below zero; clamp so the
    # constructor's trim sees a valid mass vector.
    np.clip(out, 0.0, None, out=out)
    return out


class DiscreteDistribution:
    """A probability distribution over travel times on a uniform tick grid.

    Parameters
    ----------
    offset:
        Index of the first grid cell; the smallest possible travel time is
        ``offset`` ticks.
    probs:
        Probability of each consecutive tick starting at ``offset``.  The
        vector is normalised on construction (its sum must be positive).
    normalize:
        When ``False`` the caller asserts ``probs`` already sums to one and
        normalisation is skipped (used on hot paths).

    Notes
    -----
    Instances are immutable: all operations return new distributions.  The
    probability array is copied on construction and flagged read-only.
    Internal operations that already uphold the invariants bypass the copy
    through the private :meth:`_trusted` constructor instead.
    """

    __slots__ = ("_offset", "_probs", "_cdf")

    def __init__(
        self,
        offset: int,
        probs: Sequence[float] | np.ndarray,
        *,
        normalize: bool = True,
    ) -> None:
        arr = _as_probability_array(probs)
        if normalize:
            total = float(arr.sum())
            if total <= 0.0:
                raise ValueError("probability vector must have positive mass")
            if not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-9):
                arr = arr / total
        # Trim leading/trailing zero mass so that support bounds are tight.
        nonzero = np.flatnonzero(arr > _MASS_EPSILON)
        if nonzero.size == 0:
            raise ValueError("probability vector must have positive mass")
        first, last = int(nonzero[0]), int(nonzero[-1])
        arr = arr[first : last + 1]
        self._offset = int(offset) + first
        self._probs = arr
        self._probs.flags.writeable = False
        self._cdf = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def _trusted(cls, offset: int, arr: np.ndarray) -> "DiscreteDistribution":
        """Zero-copy constructor for internal, invariant-preserving arrays.

        Package-internal (also used by :mod:`repro.histograms.operations`).
        ``arr`` must be a fresh-or-already-frozen 1-D float64 vector with
        non-negative finite cells and unit mass; it is frozen and aliased,
        never copied, and validation is skipped entirely.  Trimming — when
        the endpoints call for it at all — slices a read-only view.
        """
        self = object.__new__(cls)
        arr.flags.writeable = False
        if arr[0] <= _MASS_EPSILON or arr[-1] <= _MASS_EPSILON:
            nonzero = np.flatnonzero(arr > _MASS_EPSILON)
            if nonzero.size == 0:
                raise ValueError("probability vector must have positive mass")
            first = int(nonzero[0])
            arr = arr[first : int(nonzero[-1]) + 1]
            offset += first
        self._offset = int(offset)
        self._probs = arr
        self._cdf = None
        return self

    @classmethod
    def point(cls, value: int) -> "DiscreteDistribution":
        """A deterministic travel time of exactly ``value`` ticks."""
        return cls._trusted(value, np.ones(1))

    @classmethod
    def from_mapping(cls, mapping: Mapping[int, float]) -> "DiscreteDistribution":
        """Build a distribution from ``{tick: probability}``.

        Example
        -------
        >>> d = DiscreteDistribution.from_mapping({30: 0.5, 40: 0.5})
        >>> d.mean()
        35.0
        """
        if not mapping:
            raise ValueError("mapping must be non-empty")
        ticks = sorted(int(t) for t in mapping)
        lo, hi = ticks[0], ticks[-1]
        probs = np.zeros(hi - lo + 1, dtype=np.float64)
        for tick, p in mapping.items():
            probs[int(tick) - lo] += float(p)
        return cls(lo, probs)

    @classmethod
    def from_samples(
        cls, samples: Iterable[float], *, resolution: float = 1.0
    ) -> "DiscreteDistribution":
        """Build an empirical distribution from raw travel-time samples.

        ``samples`` are given in the same unit as ``resolution`` (typically
        seconds); each sample is rounded to the nearest tick.
        """
        values = np.asarray(list(samples), dtype=np.float64)
        if values.size == 0:
            raise ValueError("need at least one sample")
        if np.any(values < 0):
            raise ValueError("travel times must be non-negative")
        ticks = np.rint(values / float(resolution)).astype(np.int64)
        lo, hi = int(ticks.min()), int(ticks.max())
        probs = np.bincount(ticks - lo, minlength=hi - lo + 1).astype(np.float64)
        return cls(lo, probs)

    @classmethod
    def uniform(cls, lo: int, hi: int) -> "DiscreteDistribution":
        """Uniform distribution over the inclusive tick range ``[lo, hi]``."""
        if hi < lo:
            raise ValueError("hi must be >= lo")
        return cls(lo, np.full(hi - lo + 1, 1.0), normalize=True)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def offset(self) -> int:
        """Tick index of the first support cell (the minimum travel time)."""
        return self._offset

    @property
    def probs(self) -> np.ndarray:
        """Read-only probability vector aligned at :attr:`offset`."""
        return self._probs

    @property
    def support_size(self) -> int:
        """Number of grid cells between min and max support, inclusive."""
        return int(self._probs.size)

    @property
    def min_value(self) -> int:
        """Smallest travel time with positive probability (ticks)."""
        return self._offset

    @property
    def max_value(self) -> int:
        """Largest travel time with positive probability (ticks)."""
        return self._offset + self._probs.size - 1

    def __len__(self) -> int:
        return self.support_size

    def __iter__(self) -> Iterator[tuple[int, float]]:
        """Iterate ``(tick, probability)`` pairs over the support."""
        for i, p in enumerate(self._probs):
            if p > _MASS_EPSILON:
                yield self._offset + i, float(p)

    def to_mapping(self) -> dict[int, float]:
        """Return ``{tick: probability}`` for the support."""
        return dict(self)

    def prob_at(self, tick: int) -> float:
        """Probability that the travel time equals exactly ``tick``."""
        idx = int(tick) - self._offset
        if idx < 0 or idx >= self._probs.size:
            return 0.0
        return float(self._probs[idx])

    # ------------------------------------------------------------------
    # Moments and summary statistics
    # ------------------------------------------------------------------

    def mean(self) -> float:
        """Expected travel time in ticks."""
        idx = _indices(self._probs.size)
        total = float(self.cdf()[-1])
        return self._offset * total + float(np.dot(idx, self._probs))

    def variance(self) -> float:
        """Variance of the travel time in ticks squared."""
        idx = _indices(self._probs.size)
        total = float(self.cdf()[-1])
        mu = self._offset * total + float(np.dot(idx, self._probs))
        centered = idx - (mu - self._offset)
        return float(np.dot(centered * centered, self._probs))

    def std(self) -> float:
        """Standard deviation of the travel time in ticks."""
        return math.sqrt(max(self.variance(), 0.0))

    def entropy(self) -> float:
        """Shannon entropy in nats."""
        p = self._probs[self._probs > _MASS_EPSILON]
        return float(-np.dot(p, np.log(p)))

    def mode(self) -> int:
        """Tick with the highest probability (smallest on ties)."""
        return self._offset + int(np.argmax(self._probs))

    # ------------------------------------------------------------------
    # CDF, quantiles and the routing objective
    # ------------------------------------------------------------------

    def cdf(self) -> np.ndarray:
        """Cumulative probabilities aligned at :attr:`offset`.

        The array is computed once per distribution, cached, and returned as
        a **read-only** view on every subsequent call; do not mutate it.
        """
        c = self._cdf
        if c is None:
            c = np.cumsum(self._probs)
            c.flags.writeable = False
            self._cdf = c
        return c

    def cdf_at(self, tick: int) -> float:
        """``P(travel time <= tick)``."""
        idx = int(tick) - self._offset
        if idx < 0:
            return 0.0
        c = self.cdf()
        if idx >= c.size:
            return 1.0
        return float(c[idx])

    def prob_within(self, budget: int) -> float:
        """``P(travel time <= budget)`` — the PBR objective for one path."""
        return self.cdf_at(budget)

    def quantile(self, q: float) -> int:
        """Smallest tick ``t`` such that ``P(X <= t) >= q``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile level must be in [0, 1]")
        if q == 0.0:
            return self.min_value
        cum = self.cdf()
        idx = int(np.searchsorted(cum, q - 1e-12, side="left"))
        idx = min(idx, self._probs.size - 1)
        return self._offset + idx

    # ------------------------------------------------------------------
    # Algebraic operations
    # ------------------------------------------------------------------

    def shift(self, ticks: int) -> "DiscreteDistribution":
        """Translate the distribution by ``ticks`` (cost shifting, rule (c)).

        Shifting never changes the shape of the distribution, so pruning
        comparisons after a shift are exact.  The probability vector is
        shared, not copied.
        """
        return DiscreteDistribution._trusted(self._offset + int(ticks), self._probs)

    def convolve(self, other: "DiscreteDistribution") -> "DiscreteDistribution":
        """Distribution of the sum of two *independent* travel times.

        This is the classical path-cost combiner the paper improves on: it is
        only correct when the two edges are spatially independent.  Point
        masses degenerate to a pure shift (no array work), and supports whose
        direct-convolution cost exceeds the FFT crossover use real FFTs.
        """
        p, q = self._probs, other._probs
        n, m = p.size, q.size
        offset = self._offset + other._offset
        if m == 1 and q[0] == 1.0:
            return DiscreteDistribution._trusted(offset, p)
        if n == 1 and p[0] == 1.0:
            return DiscreteDistribution._trusted(offset, q)
        if min(n, m) >= _FFT_MIN_SIZE and n * m >= _FFT_MIN_WORK:
            out = _fft_convolve(p, q)
        else:
            out = np.convolve(p, q)
        return DiscreteDistribution._trusted(offset, out)

    def __add__(self, other: object) -> "DiscreteDistribution":
        if isinstance(other, DiscreteDistribution):
            return self.convolve(other)
        if isinstance(other, (int, np.integer)):
            return self.shift(int(other))
        return NotImplemented

    __radd__ = __add__

    def rebin(self, factor: int, *, anchor: int = 0) -> "DiscreteDistribution":
        """Coarsen to buckets of ``factor`` ticks.

        Mass of tick ``t`` goes into the bucket whose representative tick is
        ``anchor + floor((t - anchor) / factor) * factor`` — the bucket's left
        boundary, matching the paper's ``[40, 50)``-style bucket notation.
        """
        if factor < 1:
            raise ValueError("rebin factor must be >= 1")
        if factor == 1:
            return self
        ticks = self._offset + np.arange(self._probs.size)
        buckets = anchor + ((ticks - anchor) // factor) * factor
        lo = int(buckets[0])
        idx = (buckets - lo) // factor
        out = np.zeros(int(idx[-1]) + 1, dtype=np.float64)
        np.add.at(out, idx, self._probs)
        # Resulting distribution lives on the coarse grid expressed in the
        # original tick unit: cells are spaced ``factor`` apart, so expand to
        # the fine grid by placing mass at the bucket boundary.
        fine = np.zeros((out.size - 1) * factor + 1, dtype=np.float64)
        fine[::factor] = out
        return DiscreteDistribution._trusted(lo, fine)

    def truncate(self, max_support: int) -> "DiscreteDistribution":
        """Bound the support size, folding excess tail mass into the last cell.

        Used to keep routing labels at a fixed resolution budget; folding the
        tail (rather than dropping it) keeps the distribution a valid,
        *pessimistic-at-the-tail* approximation whose total mass is exact.
        """
        if max_support < 1:
            raise ValueError("max_support must be >= 1")
        if self._probs.size <= max_support:
            return self
        head = self._probs[:max_support].copy()
        head[-1] += float(self._probs[max_support:].sum())
        return DiscreteDistribution._trusted(self._offset, head)

    def normalize_tail(self, max_support: int) -> "DiscreteDistribution":
        """Bound the support size by *dropping* the tail and renormalising."""
        if max_support < 1:
            raise ValueError("max_support must be >= 1")
        if self._probs.size <= max_support:
            return self
        return DiscreteDistribution(self._offset, self._probs[:max_support], normalize=True)

    def window_row(self, width: int) -> np.ndarray:
        """Dense pmf over the absolute ticks ``[0, width)``, tail folded.

        Cell ``t`` holds ``P(X == t)`` for ``t < width - 1``; the last cell
        folds all mass at ticks ``>= width - 1`` (the same
        pessimistic-at-the-tail fold as :meth:`truncate` applied on the
        absolute grid).  This is the row format of the columnar search core:
        every label and edge kernel lives on one shared ``[0, width)`` grid,
        so convolution and CDF dominance become plain matrix operations.
        """
        if width < 1:
            raise ValueError("width must be >= 1")
        if self._offset < 0:
            raise ValueError("window rows require non-negative tick supports")
        out = np.zeros(width, dtype=np.float64)
        head = width - 1 - self._offset
        if head > 0:
            n = min(head, self._probs.size)
            out[self._offset : self._offset + n] = self._probs[:n]
        total = float(self.cdf()[-1])
        out[width - 1] = max(total - float(out[: width - 1].sum()), 0.0)
        return out

    def sample(self, rng: np.random.Generator, size: int | None = None) -> np.ndarray | int:
        """Draw travel-time samples (ticks) via inverse-CDF lookup.

        The cached prefix sum makes each draw a ``searchsorted`` — no
        per-call renormalisation, no value-array allocation.
        """
        c = self.cdf()
        last = c.size - 1
        total = float(c[-1])
        if size is None:
            idx = int(np.searchsorted(c, rng.random() * total, side="right"))
            return self._offset + min(idx, last)
        idx = np.searchsorted(c, rng.random(size) * total, side="right")
        np.minimum(idx, last, out=idx)
        return (self._offset + idx).astype(np.int64)

    # ------------------------------------------------------------------
    # Grid alignment and comparison
    # ------------------------------------------------------------------

    def aligned_with(
        self, other: "DiscreteDistribution"
    ) -> tuple[int, np.ndarray, np.ndarray]:
        """Express both distributions on a common grid.

        Returns ``(offset, p, q)`` where ``p`` and ``q`` have equal length
        starting at ``offset``.
        """
        lo = min(self.min_value, other.min_value)
        hi = max(self.max_value, other.max_value)
        size = hi - lo + 1
        p = np.zeros(size, dtype=np.float64)
        q = np.zeros(size, dtype=np.float64)
        p[self._offset - lo : self._offset - lo + self._probs.size] = self._probs
        q[other._offset - lo : other._offset - lo + other._probs.size] = other._probs
        return lo, p, q

    def allclose(self, other: "DiscreteDistribution", *, atol: float = 1e-9) -> bool:
        """True when the two distributions agree up to ``atol`` per cell."""
        _, p, q = self.aligned_with(other)
        return bool(np.allclose(p, q, atol=atol, rtol=0.0))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiscreteDistribution):
            return NotImplemented
        return self.allclose(other, atol=1e-12)

    def __hash__(self) -> int:  # pragma: no cover - defensive
        return hash((self._offset, self._probs.tobytes()))

    def __repr__(self) -> str:
        pairs = ", ".join(f"{t}: {p:.3f}" for t, p in list(self)[:6])
        suffix = ", ..." if self.support_size > 6 else ""
        return f"DiscreteDistribution({{{pairs}{suffix}}})"
