"""Travel-time histogram algebra.

Uniform-grid discrete distributions with exact convolution, cost shifting,
stochastic dominance, distribution metrics (KL et al.) and 2-D joints for
edge-pair dependence analysis — the substrate under both the hybrid model and
probabilistic budget routing.
"""

from .distribution import DiscreteDistribution
from .dominance import ParetoFrontier, dominates, non_dominated, weakly_dominates
from .joint import JointDistribution
from .metrics import (
    cross_entropy,
    hellinger,
    js_divergence,
    kl_divergence,
    total_variation,
    wasserstein,
)
from .operations import (
    shape_profile,
    delay_profile,
    from_delay_profile,
    mixture,
    project_onto_window,
    scale_values,
)

__all__ = [
    "DiscreteDistribution",
    "JointDistribution",
    "ParetoFrontier",
    "cross_entropy",
    "delay_profile",
    "dominates",
    "from_delay_profile",
    "hellinger",
    "js_divergence",
    "kl_divergence",
    "mixture",
    "non_dominated",
    "project_onto_window",
    "scale_values",
    "shape_profile",
    "total_variation",
    "wasserstein",
    "weakly_dominates",
]
