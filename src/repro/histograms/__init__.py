"""Travel-time histogram algebra.

Uniform-grid discrete distributions with exact convolution, cost shifting,
stochastic dominance, distribution metrics (KL et al.) and 2-D joints for
edge-pair dependence analysis — the substrate under both the hybrid model and
probabilistic budget routing.
"""

from .distribution import DiscreteDistribution
from .dominance import (
    DOMINANCE_TOL,
    ParetoFrontier,
    cdf_dominance_matrix,
    dominates,
    non_dominated,
    weakly_dominates,
)
from .joint import JointDistribution
from .metrics import (
    cross_entropy,
    hellinger,
    js_divergence,
    kl_divergence,
    total_variation,
    wasserstein,
)
from .operations import (
    batched_window_convolve,
    shape_profile,
    delay_profile,
    from_delay_profile,
    mixture,
    project_onto_window,
    scale_values,
    trim_window_rows,
)

__all__ = [
    "DOMINANCE_TOL",
    "DiscreteDistribution",
    "JointDistribution",
    "ParetoFrontier",
    "batched_window_convolve",
    "cdf_dominance_matrix",
    "cross_entropy",
    "delay_profile",
    "dominates",
    "from_delay_profile",
    "hellinger",
    "js_divergence",
    "kl_divergence",
    "mixture",
    "non_dominated",
    "project_onto_window",
    "scale_values",
    "shape_profile",
    "total_variation",
    "trim_window_rows",
    "wasserstein",
    "weakly_dominates",
]
