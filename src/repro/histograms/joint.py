"""Joint travel-time distributions for consecutive edge pairs.

The core object behind the paper's motivating example: traversing two adjacent
edges has a *joint* distribution ``P(t1, t2)``; the true path cost is the
distribution of ``t1 + t2`` under that joint.  Convolution replaces the joint
with the product of its marginals — exact only under independence.  The
:class:`JointDistribution` lets us compute both, quantify how far apart they
are, and measure dependence (mutual information, correlation, chi-square),
which drives the paper's "~75 % of edge pairs are dependent" statistic.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from .distribution import DiscreteDistribution

__all__ = ["JointDistribution"]

_MASS_EPSILON = 1e-12


class JointDistribution:
    """Joint distribution of two travel times on a uniform tick grid.

    Parameters
    ----------
    offset1, offset2:
        Tick index of the first row / column.
    probs:
        2-D array where ``probs[i, j]`` is the probability of
        ``(t1, t2) = (offset1 + i, offset2 + j)``.
    """

    __slots__ = ("_offset1", "_offset2", "_probs")

    def __init__(
        self,
        offset1: int,
        offset2: int,
        probs: np.ndarray,
        *,
        normalize: bool = True,
    ) -> None:
        arr = np.asarray(probs, dtype=np.float64)
        if arr.ndim != 2:
            raise ValueError(f"joint probability array must be 2-D, got {arr.shape}")
        if arr.size == 0:
            raise ValueError("joint probability array must be non-empty")
        if np.any(arr < -_MASS_EPSILON):
            raise ValueError("probabilities must be non-negative")
        arr = np.clip(arr, 0.0, None)
        total = float(arr.sum())
        if total <= 0.0:
            raise ValueError("joint distribution must have positive mass")
        if normalize and not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-9):
            arr = arr / total
        rows = np.flatnonzero(arr.sum(axis=1) > _MASS_EPSILON)
        cols = np.flatnonzero(arr.sum(axis=0) > _MASS_EPSILON)
        arr = arr[rows[0] : rows[-1] + 1, cols[0] : cols[-1] + 1]
        self._offset1 = int(offset1) + int(rows[0])
        self._offset2 = int(offset2) + int(cols[0])
        self._probs = arr
        self._probs.flags.writeable = False

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_samples(
        cls,
        pairs: Iterable[tuple[float, float]],
        *,
        resolution: float = 1.0,
    ) -> "JointDistribution":
        """Empirical joint from observed ``(t1, t2)`` traversal pairs."""
        data = np.asarray(list(pairs), dtype=np.float64)
        if data.size == 0:
            raise ValueError("need at least one sample pair")
        ticks = np.rint(data / float(resolution)).astype(np.int64)
        lo1, lo2 = int(ticks[:, 0].min()), int(ticks[:, 1].min())
        hi1, hi2 = int(ticks[:, 0].max()), int(ticks[:, 1].max())
        probs = np.zeros((hi1 - lo1 + 1, hi2 - lo2 + 1), dtype=np.float64)
        np.add.at(probs, (ticks[:, 0] - lo1, ticks[:, 1] - lo2), 1.0)
        return cls(lo1, lo2, probs)

    @classmethod
    def independent(
        cls, first: DiscreteDistribution, second: DiscreteDistribution
    ) -> "JointDistribution":
        """Product joint ``P(t1) * P(t2)`` — what convolution assumes."""
        probs = np.outer(first.probs, second.probs)
        return cls(first.offset, second.offset, probs, normalize=False)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def offset1(self) -> int:
        return self._offset1

    @property
    def offset2(self) -> int:
        return self._offset2

    @property
    def probs(self) -> np.ndarray:
        return self._probs

    @property
    def shape(self) -> tuple[int, int]:
        return self._probs.shape  # type: ignore[return-value]

    def prob_at(self, t1: int, t2: int) -> float:
        """``P(t1, t2)`` for exact tick values."""
        i = int(t1) - self._offset1
        j = int(t2) - self._offset2
        if i < 0 or j < 0 or i >= self._probs.shape[0] or j >= self._probs.shape[1]:
            return 0.0
        return float(self._probs[i, j])

    # ------------------------------------------------------------------
    # Derived distributions
    # ------------------------------------------------------------------

    def marginal_first(self) -> DiscreteDistribution:
        """Marginal distribution of the first edge's travel time."""
        return DiscreteDistribution(self._offset1, self._probs.sum(axis=1), normalize=False)

    def marginal_second(self) -> DiscreteDistribution:
        """Marginal distribution of the second edge's travel time."""
        return DiscreteDistribution(self._offset2, self._probs.sum(axis=0), normalize=False)

    def total_cost(self) -> DiscreteDistribution:
        """Exact distribution of ``t1 + t2`` under the joint (the ground truth).

        This is the quantity the paper's motivating example compares against
        convolution: summing along anti-diagonals of the joint array.
        """
        n, m = self._probs.shape
        out = np.zeros(n + m - 1, dtype=np.float64)
        for i in range(n):
            out[i : i + m] += self._probs[i]
        return DiscreteDistribution(self._offset1 + self._offset2, out, normalize=False)

    def convolved_marginals(self) -> DiscreteDistribution:
        """Convolution of the marginals — the independence approximation."""
        return self.marginal_first().convolve(self.marginal_second())

    def conditional_second(self, t1: int) -> DiscreteDistribution:
        """``P(t2 | t1)`` for a given first-edge travel time."""
        i = int(t1) - self._offset1
        if i < 0 or i >= self._probs.shape[0]:
            raise ValueError(f"t1={t1} outside joint support")
        row = self._probs[i]
        if float(row.sum()) <= 0.0:
            raise ValueError(f"t1={t1} has zero marginal probability")
        return DiscreteDistribution(self._offset2, row, normalize=True)

    # ------------------------------------------------------------------
    # Dependence measures
    # ------------------------------------------------------------------

    def mutual_information(self) -> float:
        """Mutual information ``I(T1; T2)`` in nats (0 iff independent)."""
        p1 = self._probs.sum(axis=1)
        p2 = self._probs.sum(axis=0)
        prod = np.outer(p1, p2)
        mask = self._probs > _MASS_EPSILON
        return float(
            np.sum(self._probs[mask] * np.log(self._probs[mask] / prod[mask]))
        )

    def correlation(self) -> float:
        """Pearson correlation between the two travel times.

        Returns 0 when either marginal is degenerate (zero variance).
        """
        t1 = self._offset1 + np.arange(self._probs.shape[0], dtype=np.float64)
        t2 = self._offset2 + np.arange(self._probs.shape[1], dtype=np.float64)
        p1 = self._probs.sum(axis=1)
        p2 = self._probs.sum(axis=0)
        mu1 = float(np.dot(t1, p1))
        mu2 = float(np.dot(t2, p2))
        var1 = float(np.dot((t1 - mu1) ** 2, p1))
        var2 = float(np.dot((t2 - mu2) ** 2, p2))
        if var1 <= _MASS_EPSILON or var2 <= _MASS_EPSILON:
            return 0.0
        cov = float((t1 - mu1) @ self._probs @ (t2 - mu2))
        return cov / math.sqrt(var1 * var2)

    def chi_square_statistic(self, num_samples: int) -> tuple[float, int]:
        """Pearson chi-square statistic against independence.

        Interprets the joint as an empirical table of ``num_samples``
        observations.  Returns ``(statistic, degrees_of_freedom)``; callers
        compare against ``scipy.stats.chi2`` to get a p-value.  Cells with
        zero expected count are skipped (standard practice for sparse
        contingency tables).
        """
        if num_samples < 1:
            raise ValueError("num_samples must be >= 1")
        observed = self._probs * num_samples
        p1 = self._probs.sum(axis=1)
        p2 = self._probs.sum(axis=0)
        expected = np.outer(p1, p2) * num_samples
        mask = expected > _MASS_EPSILON
        stat = float(np.sum((observed[mask] - expected[mask]) ** 2 / expected[mask]))
        dof = max((int(np.sum(p1 > _MASS_EPSILON)) - 1), 1) * max(
            (int(np.sum(p2 > _MASS_EPSILON)) - 1), 1
        )
        return stat, dof

    def is_independent(self, *, tol: float = 1e-9) -> bool:
        """Exact independence test: joint equals the product of marginals."""
        p1 = self._probs.sum(axis=1)
        p2 = self._probs.sum(axis=0)
        return bool(np.allclose(self._probs, np.outer(p1, p2), atol=tol, rtol=0.0))

    def __repr__(self) -> str:
        return (
            f"JointDistribution(offset1={self._offset1}, offset2={self._offset2}, "
            f"shape={self._probs.shape})"
        )
