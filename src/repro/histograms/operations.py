"""Compound operations on travel-time distributions.

Helpers shared by the traffic simulator (mixtures over latent congestion
states), the estimation model (projecting predictions onto bounded supports),
the columnar search core (batched window convolution) and the experiment
harness.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .distribution import DiscreteDistribution, _MASS_EPSILON

__all__ = [
    "mixture",
    "scale_values",
    "project_onto_window",
    "from_delay_profile",
    "delay_profile",
    "shape_profile",
    "batched_window_convolve",
    "trim_window_rows",
]


def batched_window_convolve(
    parents: np.ndarray,
    kernel_offsets: np.ndarray,
    kernel_probs: np.ndarray,
    kernel_totals: np.ndarray,
) -> np.ndarray:
    """Row-wise convolution of label rows with edge kernels, folded in-window.

    ``parents`` is an ``(n, width)`` block of dense pmf rows on the absolute
    tick grid ``[0, width)`` whose last cell is the fold cell (all mass at
    ticks ``>= width - 1``, see :meth:`DiscreteDistribution.window_row`).
    Kernel ``i`` is the pmf ``kernel_probs[i]`` starting at tick
    ``kernel_offsets[i]`` with total mass ``kernel_totals[i]``.  Returns the
    ``(n, width)`` block of child rows, each the linear convolution
    ``parent[i] * kernel[i]`` with everything at or beyond the fold cell
    folded back into it.

    The head columns (``t < width - 1``) are exact: a parent's fold cell only
    ever contributes at or beyond the fold cell, so the fold never leaks mass
    below the budget boundary.  The fold cell itself is reconstructed by mass
    conservation (``total - head``), which keeps each row's sum exactly
    ``parent_mass * kernel_mass``.

    The kernel support loop runs over grid columns grouped by offset, so a
    batch of same-offset kernels (the common case: one road category) costs
    one strided multiply-add per support cell regardless of batch size.
    """
    n, width = parents.shape
    out = np.zeros((n, width), dtype=np.float64)
    support = kernel_probs.shape[1]
    for off in np.unique(kernel_offsets):
        rows = np.flatnonzero(kernel_offsets == off)
        block = parents[rows]
        probs = kernel_probs[rows]
        acc = np.zeros((rows.size, width), dtype=np.float64)
        for s in range(support):
            t = int(off) + s
            if t >= width - 1:
                break
            col = probs[:, s]
            if not col.any():
                continue
            acc[:, t:] += col[:, None] * block[:, : width - t]
        out[rows] = acc
    totals = parents.sum(axis=1) * kernel_totals
    head = out[:, : width - 1].sum(axis=1)
    np.maximum(totals - head, 0.0, out=totals)
    out[:, width - 1] = totals
    return out


def trim_window_rows(rows: np.ndarray) -> np.ndarray:
    """Zero each row's leading/trailing runs of negligible mass, in place.

    Mirrors the support trimming of the scalar core's
    :meth:`DiscreteDistribution._trusted` constructor on dense window rows:
    cells of at most ``_MASS_EPSILON`` at either end of a row's support are
    dropped (set to exactly zero), so repeated convolutions do not accumulate
    sub-epsilon dust that would drift the columnar core away from the scalar
    core's probabilities.  Interior near-zero cells are kept, exactly as the
    scalar trim keeps them.
    """
    small = rows <= _MASS_EPSILON
    leading = np.logical_and.accumulate(small, axis=1)
    trailing = np.logical_and.accumulate(small[:, ::-1], axis=1)[:, ::-1]
    rows[leading | trailing] = 0.0
    return rows


def mixture(
    components: Sequence[DiscreteDistribution],
    weights: Sequence[float],
) -> DiscreteDistribution:
    """Weighted mixture of distributions.

    The traffic ground truth is a mixture over latent congestion states:
    ``P(t) = sum_s pi(s) * P(t | s)``.
    """
    if len(components) == 0:
        raise ValueError("mixture needs at least one component")
    if len(components) != len(weights):
        raise ValueError("components and weights must have equal length")
    w = np.asarray(weights, dtype=np.float64)
    if np.any(w < 0):
        raise ValueError("mixture weights must be non-negative")
    total = float(w.sum())
    if total <= 0:
        raise ValueError("mixture weights must have positive sum")
    w = w / total
    lo = min(c.min_value for c in components)
    hi = max(c.max_value for c in components)
    probs = np.zeros(hi - lo + 1, dtype=np.float64)
    for component, weight in zip(components, w):
        if weight == 0.0:
            continue
        start = component.min_value - lo
        probs[start : start + component.support_size] += weight * component.probs
    return DiscreteDistribution._trusted(lo, probs)


def scale_values(dist: DiscreteDistribution, factor: float) -> DiscreteDistribution:
    """Multiply the travel-time axis by ``factor``, rounding to the grid.

    Used to derive congested-state distributions from free-flow ones (e.g.
    heavy congestion doubling each travel time).  Mass that lands on the same
    tick after rounding is merged.
    """
    if factor <= 0:
        raise ValueError("scale factor must be positive")
    mapping: dict[int, float] = {}
    for tick, p in dist:
        scaled = int(round(tick * factor))
        mapping[scaled] = mapping.get(scaled, 0.0) + p
    return DiscreteDistribution.from_mapping(mapping)


def project_onto_window(
    probs: np.ndarray, offset: int, *, renormalize: bool = True
) -> DiscreteDistribution:
    """Build a distribution from a raw (possibly unnormalised) bin vector.

    The estimation model's softmax head outputs a probability vector over a
    fixed window of delay bins; this helper turns it into a distribution
    anchored at ``offset`` while guarding against degenerate all-zero output.
    """
    arr = np.asarray(probs, dtype=np.float64)
    arr = np.clip(arr, 0.0, None)
    if float(arr.sum()) <= 0.0:
        # Degenerate prediction: fall back to a point mass at the window start.
        arr = np.zeros_like(arr)
        if arr.size == 0:
            arr = np.ones(1)
        else:
            arr[0] = 1.0
    return DiscreteDistribution(offset, arr, normalize=renormalize)


def delay_profile(
    dist: DiscreteDistribution, *, num_bins: int
) -> np.ndarray:
    """Express ``dist`` as a fixed-length vector of delay-beyond-minimum bins.

    Bin ``i`` holds ``P(X = min + i)`` for ``i < num_bins - 1``; the final bin
    accumulates the entire remaining tail.  This is the target representation
    the distribution-estimation model is trained on: it removes the absolute
    offset (which varies per edge pair) and leaves only the *shape*.
    """
    if num_bins < 1:
        raise ValueError("num_bins must be >= 1")
    out = np.zeros(num_bins, dtype=np.float64)
    probs = dist.probs
    head = min(probs.size, num_bins - 1) if num_bins > 1 else 0
    out[:head] = probs[:head]
    out[-1] += float(probs[head:].sum()) if head < probs.size else 0.0
    if num_bins == 1:
        out[0] = 1.0
    return out


def from_delay_profile(profile: np.ndarray, offset: int) -> DiscreteDistribution:
    """Inverse of :func:`delay_profile`: re-anchor a shape vector at ``offset``."""
    return project_onto_window(profile, offset)


def shape_profile(dist: DiscreteDistribution, *, num_bins: int) -> tuple[np.ndarray, int]:
    """Scale-invariant shape descriptor: mass per equal-width support chunk.

    The support ``[min, max]`` is divided into ``num_bins`` chunks of
    ``width = ceil(support / num_bins)`` ticks; the returned vector holds the
    mass of each chunk and always sums to 1.  Unlike :func:`delay_profile`
    this never saturates on wide distributions (the chunk width grows
    instead), which is what lets a model trained on short pre-paths read the
    shape of a long virtual edge.

    Returns ``(profile, width)``; ``width`` is a useful scale feature.
    """
    if num_bins < 1:
        raise ValueError("num_bins must be >= 1")
    support = dist.support_size
    width = max(1, -(-support // num_bins))  # ceil division
    out = np.zeros(num_bins, dtype=np.float64)
    # width = ceil(support / num_bins) guarantees at most num_bins chunks, so
    # every chunk maps to its own output bin and one segmented reduction
    # replaces the per-chunk Python loop.
    starts = np.arange(0, support, width)
    out[: starts.size] = np.add.reduceat(dist.probs, starts)
    return out, width
