"""First-order stochastic dominance for travel-time distributions.

Stochastic dominance is pruning rule (d) of the paper's probabilistic budget
routing algorithm: if two search labels reach the same vertex and one label's
cost distribution stochastically dominates the other's, the dominated label
can never become part of a better answer for *any* remaining budget and is
discarded.

For travel times, *smaller is better*, so distribution ``P`` dominates ``Q``
when ``P`` is at least as likely to be under every deadline::

    forall t:  P(X <= t) >= Q(Y <= t)

with strict inequality somewhere (otherwise the two are equal and either may
be kept).

Hot-path design (see PERFORMANCE.md)
------------------------------------
Dominance checks are the inner loop of the PBR search, so this module never
materialises zero-padded aligned vectors.  Pairwise checks compare slices of
each distribution's cached CDF (:meth:`DiscreteDistribution.cdf`) directly —
CDFs are monotone, so everything outside the support overlap reduces to O(1)
scalar comparisons against the plateau values.  :class:`ParetoFrontier`
additionally keeps all residents' CDFs in one padded 2-D matrix per vertex,
turning membership and eviction into single broadcast comparisons.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from .distribution import DiscreteDistribution

__all__ = [
    "DOMINANCE_TOL",
    "cdf_dominance_matrix",
    "dominates",
    "weakly_dominates",
    "non_dominated",
    "ParetoFrontier",
]

_TOL = 1e-12

#: The dominance comparison tolerance, exported for the columnar search core
#: so its matrix screens use the exact same epsilon as :func:`weakly_dominates`
#: and :class:`ParetoFrontier`.
DOMINANCE_TOL = _TOL

#: Upper bound on the broadcast buffer of one :func:`cdf_dominance_matrix`
#: chunk, in float64 cells (``chunk_rows * m * width``).
_MATRIX_CHUNK_CELLS = 1 << 22


def cdf_dominance_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise weak-dominance matrix between two blocks of CDF rows.

    ``a`` is ``(n, width)`` and ``b`` is ``(m, width)``, both CDFs evaluated
    on one shared tick grid whose last column is each distribution's plateau
    (total mass).  Returns a boolean ``(n, m)`` matrix where ``out[i, j]`` is
    true when row ``a[i]`` weakly dominates row ``b[j]`` — i.e.
    ``a[i] >= b[j] - DOMINANCE_TOL`` at every grid column.  For
    distributions whose support lies inside the grid this is exactly
    :func:`weakly_dominates` (beyond the grid both CDFs sit at their
    plateaus, which the last column compares).

    The broadcast work is chunked over rows of ``a`` so the intermediate
    ``(chunk, m, width)`` buffer stays small.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise ValueError(
            f"expected 2-D CDF blocks on one grid, got {a.shape} and {b.shape}"
        )
    n, m = a.shape[0], b.shape[0]
    out = np.empty((n, m), dtype=bool)
    step = max(1, _MATRIX_CHUNK_CELLS // max(1, m * a.shape[1]))
    shifted = b - _TOL
    for start in range(0, n, step):
        block = a[start : start + step]
        out[start : start + step] = np.all(
            block[:, None, :] >= shifted[None, :, :], axis=2
        )
    return out


def weakly_dominates(p: DiscreteDistribution, q: DiscreteDistribution) -> bool:
    """True when ``P(X <= t) >= Q(Y <= t)`` for every tick ``t``.

    Weak dominance admits equality everywhere; it is the test used for
    pruning because discarding an exact duplicate label is also sound.
    """
    # Support-bound necessary/sufficient conditions.  ``p`` entirely at or
    # below ``q``'s minimum dominates outright (this also covers the
    # equal-point-mass case); ``p`` starting later than ``q`` cannot, because
    # at ``t = q.min`` we would need ``0 >= q.probs[0] - tol`` and trimmed
    # distributions keep only cells above the tolerance.
    if p.max_value <= q.min_value:
        return True
    if p.min_value > q.min_value:
        return False
    pc = p.cdf()
    qc = q.cdf()
    # Both CDFs over the ticks [q.min, p.max] (nonempty: p.max > q.min).
    # Below q.min:  F_q = 0 <= F_p.  Above p.max: F_p is at its plateau and
    # F_q is monotone, so one scalar comparison settles the whole tail.
    pseg = pc[q.min_value - p.min_value :]
    overlap = min(pseg.size, qc.size)
    if not np.all(pseg[:overlap] >= qc[:overlap] - _TOL):
        return False
    if pseg.size < qc.size:
        # Ticks (p.max, q.max]: F_p == plateau, F_q peaks at its own plateau.
        return bool(pc[-1] >= qc[-1] - _TOL)
    if pseg.size > qc.size:
        # Ticks (q.max, p.max]: F_q == plateau, F_p is smallest at the first.
        return bool(pseg[qc.size] >= qc[-1] - _TOL)
    return True


def _strictly_better_somewhere(
    p: DiscreteDistribution, q: DiscreteDistribution
) -> bool:
    """``exists t: P(X <= t) > Q(Y <= t) + tol``, assuming ``p`` weakly dominates ``q``.

    Weak dominance forces ``p.min <= q.min``; when ``p`` starts strictly
    earlier its CDF is already positive where ``q``'s is still zero, so only
    the equal-minimum case needs an array comparison — on grids that then
    share their origin, with plateau tails handled by scalar checks.
    """
    if p.min_value < q.min_value:
        return True
    pc = p.cdf()
    qc = q.cdf()
    overlap = min(pc.size, qc.size)
    if np.any(pc[:overlap] > qc[:overlap] + _TOL):
        return True
    if pc.size < qc.size:
        # Ticks (p.max, q.max]: F_p == plateau, F_q smallest just after q.max.
        return bool(pc[-1] > qc[pc.size] + _TOL)
    if pc.size > qc.size:
        # Ticks (q.max, p.max]: F_q == plateau, F_p largest at its own plateau.
        return bool(pc[-1] > qc[-1] + _TOL)
    return False


def dominates(p: DiscreteDistribution, q: DiscreteDistribution) -> bool:
    """Strict first-order dominance: weak dominance plus inequality somewhere."""
    if not weakly_dominates(p, q):
        return False
    return _strictly_better_somewhere(p, q)


def non_dominated(
    distributions: Sequence[DiscreteDistribution],
) -> list[DiscreteDistribution]:
    """Filter a set of distributions down to its Pareto frontier.

    A distribution survives when no *other* distribution weakly dominates it,
    except that among exact duplicates the first occurrence is kept.
    """
    frontier = ParetoFrontier()
    for candidate in distributions:
        frontier.add(candidate)
    return list(frontier)


class ParetoFrontier:
    """Mutable Pareto set of non-dominated distributions at a search vertex.

    The PBR search keeps one frontier per vertex; a new label is inserted only
    when no resident distribution weakly dominates it, and inserting it evicts
    every resident it dominates.  ``max_size`` optionally bounds the frontier
    (labels beyond the bound are rejected pessimistically), which turns the
    exact search into the bounded-memory variant used for large graphs.

    Residents' CDFs are stored row-wise in one padded 2-D matrix spanning the
    union of their supports (zeros before each support, the distribution's
    plateau after it), so a dominance screen against *all* residents is a
    single broadcast comparison instead of pairwise alignments.  The matrix
    over-allocates rows (doubling) and grid columns (margin on growth) so the
    steady state of a search — thousands of ``add`` calls against a
    slowly-changing resident set — reallocates rarely.
    """

    __slots__ = ("_members", "max_size", "_matrix", "_scratch", "_lo", "_hi")

    #: Fraction of extra grid columns allocated beyond a requested widening.
    _GRID_MARGIN = 4

    def __init__(self, *, max_size: int | None = None) -> None:
        if max_size is not None and max_size < 1:
            raise ValueError("max_size must be >= 1 when given")
        self._members: list[DiscreteDistribution] = []
        self.max_size = max_size
        #: Row capacity >= ``len(_members)``; rows ``[0, len(_members))`` are
        #: live, each holding that member's CDF on every tick of
        #: ``[_lo, _hi]`` (the grid may carry headroom beyond the supports).
        self._matrix: np.ndarray | None = None
        #: Reusable buffer a candidate's grid-aligned CDF is built into.
        self._scratch: np.ndarray | None = None
        self._lo = 0
        self._hi = -1

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterator[DiscreteDistribution]:
        return iter(self._members)

    # ------------------------------------------------------------------
    # Matrix bookkeeping
    # ------------------------------------------------------------------

    def _fill_row(self, dist: DiscreteDistribution) -> tuple[np.ndarray, bool]:
        """``dist``'s CDF over every tick of the current grid, in ``_scratch``.

        Requires ``dist.min_value >= self._lo``.  Returns ``(row, overhang)``
        where ``overhang`` is True when the support continues past the grid
        (the caller must then also compare each resident's plateau against
        ``dist``'s total mass — beyond the grid residents are flat while the
        candidate's CDF keeps rising to its own plateau).
        """
        cdf = dist.cdf()
        row = self._scratch
        width = row.size
        start = dist.min_value - self._lo
        end = start + cdf.size
        row[: min(start, width)] = 0.0
        if start < width:
            on_grid = min(end, width) - start
            row[start : start + on_grid] = cdf[:on_grid]
            if end <= width:
                row[end:] = cdf[-1]
        return row, end > width

    def _grow_grid(self, lo: int, hi: int) -> None:
        """Re-pad live rows to a wider grid covering ``[lo, hi]`` (+ margin)."""
        margin = (hi - lo + 1) // self._GRID_MARGIN
        if lo < self._lo:
            lo -= margin
        if hi > self._hi:
            hi += margin
        old = self._matrix
        count = len(self._members)
        width = hi - lo + 1
        grown = np.zeros((old.shape[0], width), dtype=np.float64)
        start = self._lo - lo
        grown[:count, start : start + old.shape[1]] = old[:count]
        # Right padding continues each resident's plateau; left padding stays
        # zero (the grid only widens, so every support is still covered).
        grown[:count, start + old.shape[1] :] = old[:count, -1:]
        self._matrix = grown
        self._scratch = np.empty(width, dtype=np.float64)
        self._lo = lo
        self._hi = hi

    # ------------------------------------------------------------------
    # Dominance queries
    # ------------------------------------------------------------------

    def is_dominated(self, candidate: DiscreteDistribution) -> bool:
        """True when some resident weakly dominates ``candidate``."""
        if not self._members:
            return False
        if candidate.min_value < self._lo:
            # Every resident's CDF is still zero at ``candidate.min`` where
            # the candidate's is already positive: nobody dominates it.
            return False
        matrix = self._matrix[: len(self._members)]
        row, overhang = self._fill_row(candidate)
        dominated = np.all(matrix >= row - _TOL, axis=1)
        if overhang:
            dominated &= matrix[:, -1] >= candidate.cdf()[-1] - _TOL
        return bool(dominated.any())

    def add(self, candidate: DiscreteDistribution) -> bool:
        """Try to insert ``candidate``; returns ``True`` when it was kept.

        Residents dominated by the candidate are evicted so the set stays an
        antichain under weak dominance.
        """
        if not self._members:
            self._lo = candidate.min_value
            self._hi = candidate.max_value
            width = self._hi - self._lo + 1
            self._matrix = np.zeros((4, width), dtype=np.float64)
            self._scratch = np.empty(width, dtype=np.float64)
            self._matrix[0], _ = self._fill_row(candidate)
            self._members.append(candidate)
            return True
        if candidate.min_value < self._lo or candidate.max_value > self._hi:
            self._grow_grid(
                min(self._lo, candidate.min_value),
                max(self._hi, candidate.max_value),
            )
        # The grid now covers the candidate, so there is never an overhang.
        row, _ = self._fill_row(candidate)
        count = len(self._members)
        live = self._matrix[:count]
        if bool(np.all(live >= row - _TOL, axis=1).any()):
            return False
        keep = ~np.all(row >= live - _TOL, axis=1)
        if not keep.all():
            survivors = np.flatnonzero(keep)
            self._members = [self._members[i] for i in survivors]
            count = survivors.size
            self._matrix[:count] = live[survivors]
        if self.max_size is not None and count >= self.max_size:
            return False
        if count == self._matrix.shape[0]:
            self._matrix = np.concatenate(
                [self._matrix, np.zeros_like(self._matrix)], axis=0
            )
        self._matrix[count] = row
        self._members.append(candidate)
        return True
