"""First-order stochastic dominance for travel-time distributions.

Stochastic dominance is pruning rule (d) of the paper's probabilistic budget
routing algorithm: if two search labels reach the same vertex and one label's
cost distribution stochastically dominates the other's, the dominated label
can never become part of a better answer for *any* remaining budget and is
discarded.

For travel times, *smaller is better*, so distribution ``P`` dominates ``Q``
when ``P`` is at least as likely to be under every deadline::

    forall t:  P(X <= t) >= Q(Y <= t)

with strict inequality somewhere (otherwise the two are equal and either may
be kept).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .distribution import DiscreteDistribution

__all__ = ["dominates", "weakly_dominates", "non_dominated", "ParetoFrontier"]

_TOL = 1e-12


def weakly_dominates(p: DiscreteDistribution, q: DiscreteDistribution) -> bool:
    """True when ``P(X <= t) >= Q(Y <= t)`` for every tick ``t``.

    Weak dominance admits equality everywhere; it is the test used for
    pruning because discarding an exact duplicate label is also sound.
    """
    # Fast necessary conditions on support bounds avoid full alignment on the
    # common case where supports are disjoint or nested.
    if p.min_value > q.max_value:
        return False
    if p.max_value <= q.min_value:
        return True
    _, pa, qa = p.aligned_with(q)
    return bool(np.all(np.cumsum(pa) >= np.cumsum(qa) - _TOL))


def dominates(p: DiscreteDistribution, q: DiscreteDistribution) -> bool:
    """Strict first-order dominance: weak dominance plus inequality somewhere."""
    if not weakly_dominates(p, q):
        return False
    _, pa, qa = p.aligned_with(q)
    return bool(np.any(np.cumsum(pa) > np.cumsum(qa) + _TOL))


def non_dominated(
    distributions: Sequence[DiscreteDistribution],
) -> list[DiscreteDistribution]:
    """Filter a set of distributions down to its Pareto frontier.

    A distribution survives when no *other* distribution weakly dominates it,
    except that among exact duplicates the first occurrence is kept.
    """
    survivors: list[DiscreteDistribution] = []
    for candidate in distributions:
        dominated = False
        for kept in survivors:
            if weakly_dominates(kept, candidate):
                dominated = True
                break
        if dominated:
            continue
        survivors = [k for k in survivors if not weakly_dominates(candidate, k)]
        survivors.append(candidate)
    return survivors


class ParetoFrontier:
    """Mutable Pareto set of non-dominated distributions at a search vertex.

    The PBR search keeps one frontier per vertex; a new label is inserted only
    when no resident distribution weakly dominates it, and inserting it evicts
    every resident it dominates.  ``max_size`` optionally bounds the frontier
    (labels beyond the bound are rejected pessimistically), which turns the
    exact search into the bounded-memory variant used for large graphs.
    """

    __slots__ = ("_members", "max_size")

    def __init__(self, *, max_size: int | None = None) -> None:
        if max_size is not None and max_size < 1:
            raise ValueError("max_size must be >= 1 when given")
        self._members: list[DiscreteDistribution] = []
        self.max_size = max_size

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterable[DiscreteDistribution]:
        return iter(self._members)

    def is_dominated(self, candidate: DiscreteDistribution) -> bool:
        """True when some resident weakly dominates ``candidate``."""
        return any(weakly_dominates(kept, candidate) for kept in self._members)

    def add(self, candidate: DiscreteDistribution) -> bool:
        """Try to insert ``candidate``; returns ``True`` when it was kept.

        Residents dominated by the candidate are evicted so the set stays an
        antichain under weak dominance.
        """
        if self.is_dominated(candidate):
            return False
        self._members = [
            kept for kept in self._members if not weakly_dominates(candidate, kept)
        ]
        if self.max_size is not None and len(self._members) >= self.max_size:
            return False
        self._members.append(candidate)
        return True
