"""Distance measures between travel-time distributions.

The paper evaluates its estimation model with the KL-divergence between the
model output and ground-truth trajectories; this module provides that metric
plus the symmetric and transport-style metrics used in the wider stochastic-
routing literature, all defined on :class:`~repro.histograms.DiscreteDistribution`
pairs aligned onto a common grid.
"""

from __future__ import annotations

import math

import numpy as np

from .distribution import DiscreteDistribution

__all__ = [
    "kl_divergence",
    "js_divergence",
    "total_variation",
    "hellinger",
    "wasserstein",
    "cross_entropy",
]

#: Additive smoothing applied to the reference distribution in KL-style
#: metrics so that ground-truth mass outside the model's support yields a
#: large-but-finite penalty instead of ``inf``.
DEFAULT_SMOOTHING = 1e-9


def _aligned(p: DiscreteDistribution, q: DiscreteDistribution) -> tuple[np.ndarray, np.ndarray]:
    _, pa, qa = p.aligned_with(q)
    return pa, qa


def kl_divergence(
    p: DiscreteDistribution,
    q: DiscreteDistribution,
    *,
    smoothing: float = DEFAULT_SMOOTHING,
) -> float:
    """``KL(p || q)`` in nats — the paper's model-quality metric.

    ``p`` plays the role of the ground truth and ``q`` the model output.
    ``q`` is smoothed with ``smoothing`` uniform mass so the divergence stays
    finite when the model misses part of the true support.
    """
    pa, qa = _aligned(p, q)
    qa = qa + smoothing
    qa = qa / qa.sum()
    mask = pa > 0
    return float(np.sum(pa[mask] * np.log(pa[mask] / qa[mask])))


def cross_entropy(
    p: DiscreteDistribution,
    q: DiscreteDistribution,
    *,
    smoothing: float = DEFAULT_SMOOTHING,
) -> float:
    """``H(p, q) = H(p) + KL(p || q)`` in nats."""
    pa, qa = _aligned(p, q)
    qa = qa + smoothing
    qa = qa / qa.sum()
    mask = pa > 0
    return float(-np.sum(pa[mask] * np.log(qa[mask])))


def js_divergence(p: DiscreteDistribution, q: DiscreteDistribution) -> float:
    """Jensen–Shannon divergence (symmetric, bounded by ``ln 2``)."""
    pa, qa = _aligned(p, q)
    m = 0.5 * (pa + qa)
    out = 0.0
    for a in (pa, qa):
        mask = a > 0
        out += 0.5 * float(np.sum(a[mask] * np.log(a[mask] / m[mask])))
    return out


def total_variation(p: DiscreteDistribution, q: DiscreteDistribution) -> float:
    """Total-variation distance, ``0.5 * sum |p - q|`` in ``[0, 1]``."""
    pa, qa = _aligned(p, q)
    return float(0.5 * np.abs(pa - qa).sum())


def hellinger(p: DiscreteDistribution, q: DiscreteDistribution) -> float:
    """Hellinger distance in ``[0, 1]``."""
    pa, qa = _aligned(p, q)
    return float(math.sqrt(max(0.0, 0.5 * np.sum((np.sqrt(pa) - np.sqrt(qa)) ** 2))))


def wasserstein(p: DiscreteDistribution, q: DiscreteDistribution) -> float:
    """1-Wasserstein (earth mover's) distance in ticks.

    On a one-dimensional grid this is the L1 distance between CDFs, which is
    the natural "how many minutes of probability mass moved" measure for
    travel-time histograms.
    """
    pa, qa = _aligned(p, q)
    return float(np.abs(np.cumsum(pa) - np.cumsum(qa)).sum())
