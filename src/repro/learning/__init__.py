"""repro.learning — closed-loop trajectory → cost-learning pipeline.

The production half of the paper's pipeline: raw GPS trips stream in,
per-edge travel-time *histograms* stream out into a live
:class:`~repro.service.RoutingService`, with quality gates in between so
the service only ever swaps to tables that beat what it is serving.

Stages (each usable standalone):

- :class:`TripIngestor` — batch/stream ingestion with HMM map matching
  and OD-signature deduplication (:mod:`repro.learning.ingest`);
- :class:`HistogramEstimator` — EM-style iterative distributional
  re-estimation with serving-table priors (:mod:`repro.learning.estimation`);
- :class:`CrossValidationGate` — k-fold held-out log-likelihood gate
  against the serving baseline (:mod:`repro.learning.gates`);
- :class:`CostPublisher` — sequenced, replay-idempotent
  :class:`~repro.service.CostUpdate` feed (:mod:`repro.learning.publisher`);
- :class:`LearningPipeline` — the orchestrator tying them into one
  closed loop with a :class:`LearningStats` observability surface
  (:mod:`repro.learning.pipeline`).

``repro.service`` never imports this package; the coupling is one-way
(learning → service) plus the duck-typed stats hook
:meth:`RoutingService.attach_learning`.
"""

from .estimation import (
    EdgeEstimate,
    EstimationConfig,
    EstimationResult,
    HistogramEstimator,
    pooled_fallbacks,
)
from .gates import CrossValidationGate, FoldScore, GateConfig, GateReport
from .ingest import IngestConfig, IngestResult, TripIngestor
from .pipeline import LearningPipeline, LearningStats, LearningUpdate, PipelineConfig
from .publisher import CostPublisher, PublishResult

__all__ = [
    "IngestConfig",
    "IngestResult",
    "TripIngestor",
    "EstimationConfig",
    "EdgeEstimate",
    "EstimationResult",
    "HistogramEstimator",
    "pooled_fallbacks",
    "GateConfig",
    "FoldScore",
    "GateReport",
    "CrossValidationGate",
    "PublishResult",
    "CostPublisher",
    "PipelineConfig",
    "LearningStats",
    "LearningUpdate",
    "LearningPipeline",
]
