"""Cross-validated quality gates: may a re-estimated batch publish?

A learning loop that hot-swaps whatever it last fit into a live routing
service will eventually publish garbage — a fold of sensor noise, a batch
of mis-matched trips, an estimator knocked over by an outlier corridor.
The gate is the loop's safety interlock, shaped like taxisim's
``CV_TrafficEstimation.py`` harness: **k-fold cross-validation** where each
fold's estimator trains on the other folds' trips and is scored on the
held-out fold, against the histograms the service is *currently serving*.

The score is held-out **per-traversal log-likelihood**: for every held-out
traversal ``(edge, t)``, ``log(P_model(t) + smoothing)`` under (a) the
candidate histograms and (b) the serving baseline (which also backstops
edges the candidate never observed — published tables keep serving the old
histogram there, so the comparison mirrors exactly what routing would see).
The batch may publish only when the candidate beats the baseline by at
least ``min_improvement`` nats on the fold mean *and* wins at least
``required_win_fraction`` of the folds — a single lucky fold is not
evidence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from ..histograms import DiscreteDistribution
from ..ml import kfold_indices
from ..trajectories import MatchedTrajectory
from .estimation import EstimationConfig, HistogramEstimator

__all__ = ["GateConfig", "FoldScore", "GateReport", "CrossValidationGate"]

#: Additive likelihood smoothing: held-out mass outside a histogram's
#: support costs ``log(smoothing)`` instead of ``-inf`` (matches the KL
#: smoothing convention in :mod:`repro.histograms.metrics`).
DEFAULT_SMOOTHING = 1e-9


@dataclass(frozen=True)
class GateConfig:
    """Quality-gate tuning parameters.

    ``min_improvement`` is in nats of mean per-traversal log-likelihood —
    ``0.0`` publishes on any strict-or-equal improvement, a positive value
    demands a margin.  ``required_win_fraction`` is the fraction of folds
    the candidate must win outright.
    """

    folds: int = 4
    min_improvement: float = 0.0
    required_win_fraction: float = 0.5
    smoothing: float = DEFAULT_SMOOTHING
    seed: int = 0

    def __post_init__(self) -> None:
        if self.folds < 2:
            raise ValueError("folds must be >= 2")
        if not 0.0 <= self.required_win_fraction <= 1.0:
            raise ValueError("required_win_fraction must be in [0, 1]")
        if self.smoothing <= 0:
            raise ValueError("smoothing must be positive")


@dataclass(frozen=True)
class FoldScore:
    """Held-out scores of one cross-validation fold."""

    fold: int
    candidate_loglik: float
    baseline_loglik: float
    num_traversals: int

    @property
    def improvement(self) -> float:
        return self.candidate_loglik - self.baseline_loglik

    def to_dict(self) -> dict[str, Any]:
        return {
            "fold": self.fold,
            "candidate_loglik": self.candidate_loglik,
            "baseline_loglik": self.baseline_loglik,
            "num_traversals": self.num_traversals,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FoldScore":
        return cls(
            fold=int(data["fold"]),
            candidate_loglik=float(data["candidate_loglik"]),
            baseline_loglik=float(data["baseline_loglik"]),
            num_traversals=int(data["num_traversals"]),
        )


@dataclass(frozen=True)
class GateReport:
    """The gate's verdict with the evidence behind it (wire-ready)."""

    passed: bool
    folds: tuple[FoldScore, ...]
    candidate_loglik: float
    baseline_loglik: float
    win_fraction: float
    num_trips: int

    @property
    def improvement(self) -> float:
        """Mean per-traversal log-likelihood gain of the candidate (nats)."""
        return self.candidate_loglik - self.baseline_loglik

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (exact :meth:`from_dict` round-trip)."""
        return {
            "kind": "gate_report",
            "passed": self.passed,
            "candidate_loglik": self.candidate_loglik,
            "baseline_loglik": self.baseline_loglik,
            "improvement": self.improvement,
            "win_fraction": self.win_fraction,
            "num_trips": self.num_trips,
            "folds": [fold.to_dict() for fold in self.folds],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "GateReport":
        return cls(
            passed=bool(data["passed"]),
            folds=tuple(FoldScore.from_dict(item) for item in data["folds"]),
            candidate_loglik=float(data["candidate_loglik"]),
            baseline_loglik=float(data["baseline_loglik"]),
            win_fraction=float(data["win_fraction"]),
            num_trips=int(data["num_trips"]),
        )


class CrossValidationGate:
    """K-fold held-out likelihood gate for re-estimated histogram batches.

    ``baseline_cost`` maps an edge id to the histogram the service is
    currently serving for it (wrap an :class:`~repro.core.costs.EdgeCostTable`
    as ``lambda eid: table.cost(network.edge(eid))``); it is both the
    yardstick and the fallback for edges the candidate does not cover.
    """

    def __init__(
        self,
        baseline_cost: Callable[[int], DiscreteDistribution],
        *,
        config: GateConfig | None = None,
        estimation: EstimationConfig | None = None,
        priors: Mapping[int, DiscreteDistribution] | None = None,
    ) -> None:
        self.baseline_cost = baseline_cost
        self.config = config or GateConfig()
        self._estimation = estimation
        self._priors = priors

    def _loglik(
        self,
        trips: Sequence[MatchedTrajectory],
        candidate: Mapping[int, DiscreteDistribution] | None,
    ) -> tuple[float, int]:
        """Mean per-traversal log-likelihood; ``candidate=None`` = baseline."""
        total = 0.0
        count = 0
        for trip in trips:
            for traversal in trip.traversals:
                distribution = None
                if candidate is not None:
                    distribution = candidate.get(traversal.edge_id)
                if distribution is None:
                    distribution = self.baseline_cost(traversal.edge_id)
                total += math.log(
                    distribution.prob_at(traversal.travel_time)
                    + self.config.smoothing
                )
                count += 1
        return (total / count if count else 0.0), count

    def evaluate(self, trips: Sequence[MatchedTrajectory]) -> GateReport:
        """Cross-validate a corpus and decide whether it may publish.

        Corpora too small to fold (< ``folds`` trips) fail closed: no
        evidence, no publish.
        """
        trips = list(trips)
        if len(trips) < self.config.folds:
            return GateReport(
                passed=False,
                folds=(),
                candidate_loglik=0.0,
                baseline_loglik=0.0,
                win_fraction=0.0,
                num_trips=len(trips),
            )
        scores: list[FoldScore] = []
        for fold, (train_idx, heldout_idx) in enumerate(
            kfold_indices(
                len(trips), folds=self.config.folds, seed=self.config.seed
            )
        ):
            estimator = HistogramEstimator(
                config=self._estimation, priors=self._priors
            )
            trained = estimator.estimate([trips[i] for i in train_idx])
            heldout = [trips[i] for i in heldout_idx]
            candidate_ll, count = self._loglik(heldout, trained.histograms())
            baseline_ll, _ = self._loglik(heldout, None)
            scores.append(
                FoldScore(
                    fold=fold,
                    candidate_loglik=candidate_ll,
                    baseline_loglik=baseline_ll,
                    num_traversals=count,
                )
            )
        candidate_mean = sum(s.candidate_loglik for s in scores) / len(scores)
        baseline_mean = sum(s.baseline_loglik for s in scores) / len(scores)
        wins = sum(1 for s in scores if s.improvement > 0)
        win_fraction = wins / len(scores)
        passed = (
            candidate_mean - baseline_mean >= self.config.min_improvement
            and win_fraction >= self.config.required_win_fraction
        )
        return GateReport(
            passed=passed,
            folds=tuple(scores),
            candidate_loglik=candidate_mean,
            baseline_loglik=baseline_mean,
            win_fraction=win_fraction,
            num_trips=len(trips),
        )
