"""Trip ingestion: raw GPS batches to an indexed trajectory corpus.

The front door of the learning loop.  Batches of raw :class:`GpsTrajectory`
traces (or already-matched :class:`MatchedTrajectory` trips, e.g. from a
partner feed) arrive; raw traces are HMM map-matched into edge sequences and
everything lands in a :class:`~repro.trajectories.TrajectoryStore` for the
estimator.

Map matching is the expensive step — Viterbi over candidate edges with
Dijkstra transition costs — so repeated origin–destination traffic (the
dominant shape of commuter corpora) is **deduplicated**: the first trip of an
OD signature pays for the full match, and every later trip with the same
signature reuses the cached edge sequence, spending only the cheap
travel-time allocation of its *own* recorded duration.  The observations stay
distinct (each trip contributes its own travel times); only the matching work
is shared.

Failure modes are part of the contract: a trace the matcher cannot place on
the network (no candidates near any fix) is *counted and skipped*, never
raised — an ingestion front must survive its feed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from ..network import free_flow_weight
from ..trajectories import (
    GpsTrajectory,
    HmmMapMatcher,
    MatchedTrajectory,
    TrajectoryStore,
)
from ..trajectories.types import EdgeTraversal

__all__ = ["IngestConfig", "IngestResult", "TripIngestor"]


@dataclass(frozen=True)
class IngestConfig:
    """Ingestion-front tuning parameters.

    ``dedup_cell_metres`` quantises a trace's first and last fix onto a
    square grid (nearest cell); two traces whose endpoints land in the same
    cell pair share one map-matching result.  The cell should be comparable to the GPS noise
    level — too small and nothing dedupes, too large and distinct OD pairs
    alias.  ``0`` disables deduplication entirely.  ``max_cached_routes``
    bounds the signature cache (oldest half is dropped on overflow, keeping
    memory proportional to the *active* OD set, not the corpus).
    """

    dedup_cell_metres: float = 50.0
    max_cached_routes: int = 10_000

    def __post_init__(self) -> None:
        if self.dedup_cell_metres < 0:
            raise ValueError("dedup_cell_metres must be >= 0 (0 disables dedup)")
        if self.max_cached_routes < 1:
            raise ValueError("max_cached_routes must be >= 1")


@dataclass(frozen=True)
class IngestResult:
    """Accounting for one ingested batch.

    ``num_matched`` counts trips that went through a full map match,
    ``num_deduped`` trips served from the OD-signature cache, and
    ``num_rejected`` traces the matcher could not place on the network;
    the three always sum to ``num_trips``.
    """

    num_trips: int
    num_matched: int
    num_deduped: int
    num_rejected: int
    elapsed_seconds: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "ingest_result",
            "num_trips": self.num_trips,
            "num_matched": self.num_matched,
            "num_deduped": self.num_deduped,
            "num_rejected": self.num_rejected,
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "IngestResult":
        return cls(
            num_trips=int(data["num_trips"]),
            num_matched=int(data["num_matched"]),
            num_deduped=int(data["num_deduped"]),
            num_rejected=int(data["num_rejected"]),
            elapsed_seconds=float(data["elapsed_seconds"]),
        )


class TripIngestor:
    """Batch/stream ingestion front over one matcher and one store."""

    def __init__(
        self,
        matcher: HmmMapMatcher,
        store: TrajectoryStore | None = None,
        *,
        config: IngestConfig | None = None,
    ) -> None:
        self.matcher = matcher
        self.store = store if store is not None else TrajectoryStore()
        self.config = config or IngestConfig()
        # OD signature -> matched edge-id sequence (insertion-ordered so
        # overflow can drop the oldest half).
        self._route_cache: dict[tuple[int, int, int, int], tuple[int, ...]] = {}
        self._cache_hits = 0
        self._cache_misses = 0

    # ------------------------------------------------------------------
    # Deduplication
    # ------------------------------------------------------------------

    def _signature(
        self, trajectory: GpsTrajectory
    ) -> tuple[int, int, int, int] | None:
        """The trace's OD cell pair, or ``None`` when dedup is off."""
        cell = self.config.dedup_cell_metres
        if cell <= 0 or len(trajectory.points) == 0:
            return None
        first, last = trajectory.points[0], trajectory.points[-1]
        # Round (not floor): endpoints cluster around true locations, so
        # nearest-cell quantisation is stable under GPS noise even when the
        # true location sits exactly on a floor-cell boundary.
        return (
            int(round(first.x / cell)),
            int(round(first.y / cell)),
            int(round(last.x / cell)),
            int(round(last.y / cell)),
        )

    def _remember(
        self, signature: tuple[int, int, int, int], edge_ids: tuple[int, ...]
    ) -> None:
        if len(self._route_cache) >= self.config.max_cached_routes:
            # Drop the oldest half in one sweep — amortised O(1) per insert.
            survivors = list(self._route_cache.items())
            self._route_cache = dict(survivors[len(survivors) // 2 :])
        self._route_cache[signature] = edge_ids

    def _allocate(
        self, trajectory: GpsTrajectory, edge_ids: tuple[int, ...]
    ) -> MatchedTrajectory:
        """Distribute this trip's duration over a cached edge sequence.

        Mirrors :meth:`HmmMapMatcher.match`: proportional to free-flow
        traversal times, rounded to grid ticks, at least one tick per edge.
        """
        resolution = self.matcher.resolution
        duration = max(trajectory.duration, resolution * len(edge_ids))
        edges = [self.matcher.network.edge(edge_id) for edge_id in edge_ids]
        weights = [free_flow_weight(edge) for edge in edges]
        total_weight = sum(weights)
        traversals = []
        clock = 0
        for edge_id, weight in zip(edge_ids, weights):
            seconds = duration * weight / total_weight
            ticks = max(1, int(round(seconds / resolution)))
            traversals.append(EdgeTraversal(edge_id, clock, ticks))
            clock += ticks
        return MatchedTrajectory(trajectory.id, tuple(traversals))

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def ingest_one(
        self, trip: GpsTrajectory | MatchedTrajectory
    ) -> MatchedTrajectory | None:
        """Match and index one trip; ``None`` when the matcher rejects it.

        Already-matched trips skip straight to the store.  Raw traces go
        through the OD-signature cache and, on a miss, the full HMM match.
        """
        if isinstance(trip, MatchedTrajectory):
            self.store.add(trip)
            return trip
        signature = self._signature(trip)
        if signature is not None:
            cached = self._route_cache.get(signature)
            if cached is not None:
                self._cache_hits += 1
                matched = self._allocate(trip, cached)
                self.store.add(matched)
                return matched
        try:
            matched = self.matcher.match(trip)
        except ValueError:
            # Off-network / no-candidate traces: a documented failure mode
            # of the matcher, not of the feed — count, skip, keep serving.
            return None
        self._cache_misses += 1
        if signature is not None:
            self._remember(signature, tuple(matched.edge_ids))
        self.store.add(matched)
        return matched

    def ingest(
        self, trips: Iterable[GpsTrajectory | MatchedTrajectory]
    ) -> IngestResult:
        """Ingest one batch, returning its accounting."""
        begin = time.perf_counter()
        num_trips = num_matched = num_deduped = num_rejected = 0
        hits_before = self._cache_hits
        for trip in trips:
            num_trips += 1
            matched = self.ingest_one(trip)
            if matched is None:
                num_rejected += 1
        num_deduped = self._cache_hits - hits_before
        num_matched = num_trips - num_deduped - num_rejected
        return IngestResult(
            num_trips=num_trips,
            num_matched=num_matched,
            num_deduped=num_deduped,
            num_rejected=num_rejected,
            elapsed_seconds=time.perf_counter() - begin,
        )

    @property
    def dedup_hit_rate(self) -> float:
        """Fraction of raw traces served from the OD-signature cache."""
        lookups = self._cache_hits + self._cache_misses
        return self._cache_hits / lookups if lookups else 0.0
