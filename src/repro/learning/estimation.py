"""Iterative distributional re-estimation of per-edge travel-time histograms.

The scalar exemplar (taxisim's ``TrafficEstimation.estimate_travel_times``)
re-estimates one mean travel time per link by repeatedly splitting each
trip's observed duration across its links in proportion to the current
estimates.  Ours is **distributional**: the same EM-style reallocation loop,
but what comes out per edge is a full :class:`DiscreteDistribution`
histogram — the object the PBR search convolves.

Why reallocate at all: a map-matched trip's per-edge times are an
*allocation* of the (trustworthy) trip duration, seeded by free-flow
proportions (:meth:`HmmMapMatcher.match`).  Free flow is systematically
wrong under congestion — a slow arterial edge is under-credited.  Each
iteration re-splits every trip's duration by the current per-edge mean
estimates (E-step) and rebuilds the per-edge sample sets from the new
splits (M-step); the fixed point credits each edge with the share of trip
time the corpus as a whole says it deserves.  Convergence is tracked per
edge (largest mean movement in the last iteration).

Low-sample edges are stabilised with **priors**: the final histogram is a
pseudo-count mixture ``(n * empirical + k * prior) / (n + k)`` where ``k``
is ``prior_weight`` and the prior comes from whatever table is currently
serving (so a freshly observed edge moves *away* from the serving estimate
only as fast as its evidence warrants).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..histograms import DiscreteDistribution, mixture
from ..network import RoadNetwork
from ..trajectories import MatchedTrajectory, TrajectoryStore

__all__ = [
    "EstimationConfig",
    "EdgeEstimate",
    "EstimationResult",
    "HistogramEstimator",
    "pooled_fallbacks",
]


@dataclass(frozen=True)
class EstimationConfig:
    """Re-estimation tuning parameters.

    ``max_iterations == 0`` disables reallocation (the store's observed
    allocations are used as-is — right when trips carry exact per-edge
    times, e.g. loop-detector joins).  ``tolerance_ticks`` is the per-edge
    mean movement below which an edge counts as converged; the loop stops
    early when *every* edge converges.  ``min_samples`` is the sufficiency
    bar an edge must clear to be estimated at all (the paper's "pairs with
    sufficient data" criterion).  ``prior_weight`` is the pseudo-count
    mass of the prior histogram blended into every estimate (0 = pure
    empirical).
    """

    min_samples: int = 5
    max_iterations: int = 8
    tolerance_ticks: float = 0.05
    prior_weight: float = 0.0

    def __post_init__(self) -> None:
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if self.max_iterations < 0:
            raise ValueError("max_iterations must be >= 0")
        if self.tolerance_ticks < 0:
            raise ValueError("tolerance_ticks must be >= 0")
        if self.prior_weight < 0:
            raise ValueError("prior_weight must be >= 0")


@dataclass(frozen=True)
class EdgeEstimate:
    """One edge's re-estimated histogram with its convergence evidence."""

    edge_id: int
    distribution: DiscreteDistribution
    num_samples: int
    mean_delta_ticks: float
    converged: bool


@dataclass(frozen=True)
class EstimationResult:
    """The outcome of one re-estimation pass over a corpus."""

    estimates: dict[int, EdgeEstimate] = field(default_factory=dict)
    iterations: int = 0
    converged: bool = True
    num_trips: int = 0

    def __len__(self) -> int:
        return len(self.estimates)

    @property
    def converged_fraction(self) -> float:
        """Fraction of estimated edges whose mean settled within tolerance."""
        if not self.estimates:
            return 1.0
        settled = sum(1 for e in self.estimates.values() if e.converged)
        return settled / len(self.estimates)

    def histograms(self) -> dict[int, DiscreteDistribution]:
        """The publishable per-edge histograms (feeds ``CostUpdate``)."""
        return {
            edge_id: estimate.distribution
            for edge_id, estimate in self.estimates.items()
        }


class HistogramEstimator:
    """EM-style per-edge histogram estimation over a trajectory corpus.

    ``priors`` maps edge ids to the histogram currently serving that edge
    (e.g. the live :class:`~repro.core.costs.EdgeCostTable` contents);
    edges without a prior are estimated purely empirically even when
    ``prior_weight`` is positive.
    """

    def __init__(
        self,
        *,
        config: EstimationConfig | None = None,
        priors: Mapping[int, DiscreteDistribution] | None = None,
    ) -> None:
        self.config = config or EstimationConfig()
        self.priors = dict(priors) if priors else {}

    # ------------------------------------------------------------------
    # The reallocation loop
    # ------------------------------------------------------------------

    @staticmethod
    def _means(samples: Mapping[int, list[int]]) -> dict[int, float]:
        return {
            edge_id: sum(values) / len(values)
            for edge_id, values in samples.items()
        }

    @staticmethod
    def _reallocate(
        trips: list[MatchedTrajectory], means: Mapping[int, float]
    ) -> dict[int, list[int]]:
        """E-step: re-split each trip's duration by the current means."""
        samples: dict[int, list[int]] = defaultdict(list)
        for trip in trips:
            duration = trip.total_travel_time
            edge_ids = trip.edge_ids
            shares = [means[edge_id] for edge_id in edge_ids]
            total = sum(shares)
            for edge_id, share in zip(edge_ids, shares):
                samples[edge_id].append(
                    max(1, int(round(duration * share / total)))
                )
        return samples

    def estimate(
        self, corpus: TrajectoryStore | Iterable[MatchedTrajectory]
    ) -> EstimationResult:
        """One full re-estimation pass over ``corpus``.

        Accepts a live :class:`TrajectoryStore` or any iterable of matched
        trips (the cross-validation gate trains on per-fold trip subsets).
        """
        trips = list(corpus)
        if not trips:
            return EstimationResult()

        # Iteration 0: the allocations the matcher (or feed) delivered.
        samples: dict[int, list[int]] = defaultdict(list)
        for trip in trips:
            for traversal in trip.traversals:
                samples[traversal.edge_id].append(traversal.travel_time)

        deltas: dict[int, float] = {edge_id: 0.0 for edge_id in samples}
        iterations = 0
        for _ in range(self.config.max_iterations):
            means = self._means(samples)
            new_samples = self._reallocate(trips, means)
            new_means = self._means(new_samples)
            deltas = {
                edge_id: abs(new_means[edge_id] - means[edge_id])
                for edge_id in new_means
            }
            samples = new_samples
            iterations += 1
            if max(deltas.values()) <= self.config.tolerance_ticks:
                break

        estimates: dict[int, EdgeEstimate] = {}
        for edge_id, values in samples.items():
            if len(values) < self.config.min_samples:
                continue
            empirical = DiscreteDistribution.from_samples(values)
            distribution = self._blend(edge_id, empirical, len(values))
            delta = deltas.get(edge_id, 0.0)
            estimates[edge_id] = EdgeEstimate(
                edge_id=edge_id,
                distribution=distribution,
                num_samples=len(values),
                mean_delta_ticks=delta,
                converged=delta <= self.config.tolerance_ticks,
            )
        return EstimationResult(
            estimates=estimates,
            iterations=iterations,
            converged=all(e.converged for e in estimates.values()),
            num_trips=len(trips),
        )

    def _blend(
        self, edge_id: int, empirical: DiscreteDistribution, num_samples: int
    ) -> DiscreteDistribution:
        """Pseudo-count blend of the empirical histogram with its prior."""
        prior = self.priors.get(edge_id)
        if prior is None or self.config.prior_weight <= 0:
            return empirical
        return mixture(
            [empirical, prior], [float(num_samples), self.config.prior_weight]
        )


def pooled_fallbacks(
    network: RoadNetwork,
    estimates: Mapping[int, EdgeEstimate],
    *,
    resolution: float,
    min_pool_weight: float = 30.0,
) -> dict[int, DiscreteDistribution]:
    """Partial pooling: histograms for edges the corpus never covered.

    A published table that mixes learned congestion histograms with the
    untouched free-flow *point masses* of unobserved edges is a trap: the
    router flees every well-observed (and therefore realistically slow)
    edge onto unobserved ones that still look perfectly free-flowing, and
    true route quality *drops* as the corpus grows.  The standard remedy is
    hierarchical shrinkage — what we can say about an unobserved edge is
    what the corpus says about edges *like it*.

    Each estimated edge contributes its histogram in **relative inflation**
    terms (ticks divided by the edge's free-flow ticks) to a pool for its
    road category — congestion severity is category-structured (arterials
    suffer more than side streets), so pooling by category captures the
    first-order signal.  A category whose pooled sample weight is below
    ``min_pool_weight`` falls back to the network-wide pool.  An unobserved
    edge then gets the pool's inflation distribution rescaled to its own
    free-flow time.

    Returns ``{edge_id: histogram}`` for exactly the edges *not* in
    ``estimates`` (empty when nothing was estimated — no evidence, no
    synthesis).
    """
    pools: dict[object, list[tuple[float, float]]] = defaultdict(list)
    for estimate in estimates.values():
        edge = network.edge(estimate.edge_id)
        free_flow = max(1, int(round(edge.free_flow_time / resolution)))
        distribution = estimate.distribution
        for index, prob in enumerate(distribution.probs):
            if prob <= 0.0:
                continue
            ratio = (distribution.offset + index) / free_flow
            pools[edge.category].append(
                (ratio, float(prob) * estimate.num_samples)
            )
    global_pool = [item for items in pools.values() for item in items]
    if not global_pool:
        return {}
    fallbacks: dict[int, DiscreteDistribution] = {}
    for edge in network.edges:
        if edge.id in estimates:
            continue
        pool = pools.get(edge.category, [])
        if sum(weight for _, weight in pool) < min_pool_weight:
            pool = global_pool
        free_flow = max(1, int(round(edge.free_flow_time / resolution)))
        mapping: dict[int, float] = defaultdict(float)
        for ratio, weight in pool:
            mapping[max(1, int(round(ratio * free_flow)))] += weight
        fallbacks[edge.id] = DiscreteDistribution.from_mapping(mapping)
    return fallbacks
