"""The closed loop: trips in, gated histogram updates out, service live.

:class:`LearningPipeline` wires the four learning stages around one running
:class:`~repro.service.RoutingService`:

1. **ingest** — GPS/matched trip batches through :class:`TripIngestor`
   (map matching + OD dedup) into the growing corpus;
2. **estimate** — :class:`HistogramEstimator` re-estimates per-edge
   travel-time histograms from the corpus, seeded with priors taken from
   the table the service is *currently serving*;
3. **gate** — :class:`CrossValidationGate` cross-validates the candidate
   against that same serving baseline on held-out trips;
4. **publish** — :class:`CostPublisher` pushes accepted batches as
   sequenced :class:`~repro.service.CostUpdate` events, hot-swapping the
   live cost tables with no restart.

The pipeline keeps a :class:`LearningStats` counter surface mirroring the
service's :class:`~repro.service.ServiceStats`, and registers it with the
service at construction so the ``learning_stats`` wire op answers from the
same deployment socket as ``stats``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from ..service import RoutingService
from ..trajectories import (
    GpsTrajectory,
    HmmMapMatcher,
    MatchedTrajectory,
    TrajectoryStore,
)
from .estimation import (
    EstimationConfig,
    EstimationResult,
    HistogramEstimator,
    pooled_fallbacks,
)
from .gates import CrossValidationGate, GateConfig, GateReport
from .ingest import IngestConfig, IngestResult, TripIngestor
from .publisher import CostPublisher, PublishResult

__all__ = ["PipelineConfig", "LearningStats", "LearningUpdate", "LearningPipeline"]


@dataclass(frozen=True)
class PipelineConfig:
    """Learning-loop orchestration parameters.

    ``min_trips_per_update`` is the batch cadence: :meth:`LearningPipeline.process`
    triggers an estimate→gate→publish cycle once that many new trips
    accumulated since the last cycle.  The stage configs pass through to
    their stages; ``None`` means stage defaults.
    """

    min_trips_per_update: int = 50
    ingest: IngestConfig | None = None
    estimation: EstimationConfig | None = None
    gate: GateConfig | None = None
    #: Extend accepted publishes to *unobserved* edges with category-pooled
    #: relative-inflation histograms (:func:`pooled_fallbacks`).  Without
    #: this, partially learned tables steer the router onto whatever edge
    #: still serves an optimistic free-flow point mass.
    publish_fallbacks: bool = True

    def __post_init__(self) -> None:
        if self.min_trips_per_update < 1:
            raise ValueError("min_trips_per_update must be >= 1")


@dataclass
class LearningStats:
    """One observability snapshot of a :class:`LearningPipeline`.

    Counters are cumulative over the pipeline's lifetime, mirroring
    :class:`~repro.service.ServiceStats`; the snapshot is wire-ready via
    :meth:`to_dict` / :meth:`from_dict` (the ``learning_stats`` op).
    """

    trips_ingested: int = 0
    trips_matched: int = 0
    trips_deduped: int = 0
    trips_rejected: int = 0
    batches_ingested: int = 0
    estimations_run: int = 0
    edges_estimated: int = 0
    gate_passes: int = 0
    gate_failures: int = 0
    updates_published: int = 0
    edges_published: int = 0
    last_sequence: int | None = None
    ingest_seconds: float = 0.0
    estimation_seconds: float = 0.0
    publish_seconds: float = 0.0

    @property
    def dedup_rate(self) -> float:
        """Fraction of ingested trips served from the OD-signature cache."""
        return self.trips_deduped / self.trips_ingested if self.trips_ingested else 0.0

    @property
    def gate_pass_rate(self) -> float:
        """Fraction of gate decisions that allowed a publish."""
        decisions = self.gate_passes + self.gate_failures
        return self.gate_passes / decisions if decisions else 0.0

    @property
    def mean_publish_seconds(self) -> float:
        """Mean hot-swap latency per published update."""
        if not self.updates_published:
            return 0.0
        return self.publish_seconds / self.updates_published

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (exact :meth:`from_dict` round-trip)."""
        return {
            "kind": "learning_stats",
            "trips_ingested": self.trips_ingested,
            "trips_matched": self.trips_matched,
            "trips_deduped": self.trips_deduped,
            "trips_rejected": self.trips_rejected,
            "batches_ingested": self.batches_ingested,
            "estimations_run": self.estimations_run,
            "edges_estimated": self.edges_estimated,
            "gate_passes": self.gate_passes,
            "gate_failures": self.gate_failures,
            "updates_published": self.updates_published,
            "edges_published": self.edges_published,
            "last_sequence": self.last_sequence,
            "ingest_seconds": self.ingest_seconds,
            "estimation_seconds": self.estimation_seconds,
            "publish_seconds": self.publish_seconds,
            "dedup_rate": self.dedup_rate,
            "gate_pass_rate": self.gate_pass_rate,
            "mean_publish_seconds": self.mean_publish_seconds,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LearningStats":
        last_sequence = data.get("last_sequence")
        return cls(
            trips_ingested=int(data["trips_ingested"]),
            trips_matched=int(data["trips_matched"]),
            trips_deduped=int(data["trips_deduped"]),
            trips_rejected=int(data["trips_rejected"]),
            batches_ingested=int(data["batches_ingested"]),
            estimations_run=int(data["estimations_run"]),
            edges_estimated=int(data["edges_estimated"]),
            gate_passes=int(data["gate_passes"]),
            gate_failures=int(data["gate_failures"]),
            updates_published=int(data["updates_published"]),
            edges_published=int(data["edges_published"]),
            last_sequence=None if last_sequence is None else int(last_sequence),
            ingest_seconds=float(data["ingest_seconds"]),
            estimation_seconds=float(data["estimation_seconds"]),
            publish_seconds=float(data["publish_seconds"]),
        )


@dataclass(frozen=True)
class LearningUpdate:
    """The outcome of one estimate→gate→publish cycle.

    ``published`` is ``None`` exactly when the gate refused the batch —
    the service kept serving its previous tables untouched.
    """

    estimation: EstimationResult
    gate: GateReport
    published: tuple[PublishResult, ...] | None = None

    @property
    def accepted(self) -> bool:
        return self.published is not None


class LearningPipeline:
    """Closed-loop trajectory → cost-learning orchestrator for one service.

    The pipeline owns the corpus (its ingestor's
    :class:`~repro.trajectories.TrajectoryStore`) and is the *only* writer
    of learning updates into ``service``; priors and the gate baseline are
    re-read from the serving table at every cycle, so each update competes
    against what is actually live, not against the pipeline's own history.
    """

    def __init__(
        self,
        service: RoutingService,
        matcher: HmmMapMatcher,
        *,
        config: PipelineConfig | None = None,
        slice_names: Sequence[str] | None = None,
        store: TrajectoryStore | None = None,
        start_sequence: int = 1,
    ) -> None:
        self.config = config or PipelineConfig()
        self.service = service
        self.matcher = matcher
        self.ingestor = TripIngestor(
            matcher, store, config=self.config.ingest
        )
        self.publisher = CostPublisher(
            service,
            slice_names=slice_names,
            source="learning",
            start_sequence=start_sequence,
        )
        self._lock = threading.Lock()
        self._stats = LearningStats()
        self._trips_since_update = 0
        # The closed loop's observability half: the service answers
        # ``learning_stats`` wire requests from this pipeline.
        service.attach_learning(self.stats)

    @property
    def store(self) -> TrajectoryStore:
        """The growing map-matched corpus."""
        return self.ingestor.store

    # ------------------------------------------------------------------
    # Serving-table views
    # ------------------------------------------------------------------

    def _serving_table(self):
        """The cost table behind the *first* published slice.

        Priors and the gate baseline come from here: when the publisher
        fans one batch out to several slices, the first configured slice
        is the reference deployment.
        """
        return self.service.engine(
            self.publisher.slice_names[0]
        ).combiner.costs

    def _serving_cost(self, edge_id: int):
        table = self._serving_table()
        return table.cost(self.matcher.network.edge(edge_id))

    def _priors(self) -> dict[int, Any]:
        """Serving histograms for every edge the corpus has data on."""
        return {
            edge_id: self._serving_cost(edge_id)
            for edge_id in self.store.edge_ids_with_data()
        }

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------

    def ingest(
        self, trips: Iterable[GpsTrajectory | MatchedTrajectory]
    ) -> IngestResult:
        """Ingest one batch into the corpus (no estimation yet)."""
        result = self.ingestor.ingest(trips)
        with self._lock:
            self._stats.trips_ingested += result.num_trips
            self._stats.trips_matched += result.num_matched
            self._stats.trips_deduped += result.num_deduped
            self._stats.trips_rejected += result.num_rejected
            self._stats.batches_ingested += 1
            self._stats.ingest_seconds += result.elapsed_seconds
            self._trips_since_update += (
                result.num_trips - result.num_rejected
            )
        return result

    def run_update(self) -> LearningUpdate:
        """One estimate→gate→publish cycle over the whole corpus.

        Estimation and gate priors/baseline are read from the live serving
        table *now*; the publish (if the gate passes) is one sequenced
        hot-swap per configured slice.  Resets the batch-cadence counter.
        """
        trips = list(self.store)
        priors = self._priors()
        begin = time.perf_counter()
        estimator = HistogramEstimator(
            config=self.config.estimation, priors=priors
        )
        estimation = estimator.estimate(trips)
        estimation_seconds = time.perf_counter() - begin
        gate = CrossValidationGate(
            self._serving_cost,
            config=self.config.gate,
            estimation=self.config.estimation,
            priors=priors,
        )
        report = gate.evaluate(trips)
        published: tuple[PublishResult, ...] | None = None
        if report.passed and estimation.estimates:
            batch = estimation.histograms()
            if self.config.publish_fallbacks:
                batch.update(
                    pooled_fallbacks(
                        self.matcher.network,
                        estimation.estimates,
                        resolution=self.matcher.resolution,
                    )
                )
            results = self.publisher.publish(batch)
            published = tuple(results)
        with self._lock:
            self._stats.estimations_run += 1
            self._stats.edges_estimated += len(estimation.estimates)
            self._stats.estimation_seconds += estimation_seconds
            if published is not None:
                self._stats.gate_passes += 1
                self._stats.updates_published += len(published)
                self._stats.edges_published += sum(
                    item.num_edges for item in published
                )
                self._stats.publish_seconds += sum(
                    item.elapsed_seconds for item in published
                )
                self._stats.last_sequence = published[-1].sequence
            else:
                self._stats.gate_failures += 1
            self._trips_since_update = 0
        return LearningUpdate(
            estimation=estimation, gate=report, published=published
        )

    def process(
        self, trips: Iterable[GpsTrajectory | MatchedTrajectory]
    ) -> tuple[IngestResult, LearningUpdate | None]:
        """Ingest one batch and, at the configured cadence, run a cycle.

        The streaming entry point: feed trip batches as they arrive and
        the pipeline re-estimates/publishes every
        ``min_trips_per_update`` accepted trips.
        """
        result = self.ingest(trips)
        with self._lock:
            due = self._trips_since_update >= self.config.min_trips_per_update
        update = self.run_update() if due else None
        return result, update

    def stats(self) -> LearningStats:
        """A point-in-time snapshot of the pipeline's counters."""
        with self._lock:
            return LearningStats(
                trips_ingested=self._stats.trips_ingested,
                trips_matched=self._stats.trips_matched,
                trips_deduped=self._stats.trips_deduped,
                trips_rejected=self._stats.trips_rejected,
                batches_ingested=self._stats.batches_ingested,
                estimations_run=self._stats.estimations_run,
                edges_estimated=self._stats.edges_estimated,
                gate_passes=self._stats.gate_passes,
                gate_failures=self._stats.gate_failures,
                updates_published=self._stats.updates_published,
                edges_published=self._stats.edges_published,
                last_sequence=self._stats.last_sequence,
                ingest_seconds=self._stats.ingest_seconds,
                estimation_seconds=self._stats.estimation_seconds,
                publish_seconds=self._stats.publish_seconds,
            )
