"""Publishing: accepted estimates become live, sequenced cost updates.

The last hop of the learning loop: a batch of per-edge histograms that
cleared the quality gate is wrapped into a versioned
:class:`~repro.service.CostUpdate` and pushed into a running
:class:`~repro.service.RoutingService` — one update per configured scenario
slice, each landing under a single cost-table version bump so every cached
answer for that slice strands at once (the service's invalidation
contract).

Updates carry **monotonically increasing sequence numbers** from one
counter, which makes the learning feed compatible with the service's
idempotent replay protocol (PR 6): snapshot a service mid-loop, restore it,
replay the publisher's updates, and already-applied batches skip instead of
double-bumping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..histograms import DiscreteDistribution
from ..service import CostUpdate, RoutingService

__all__ = ["PublishResult", "CostPublisher"]


@dataclass(frozen=True)
class PublishResult:
    """One applied update: where it landed and what it cost."""

    slice_name: str
    sequence: int
    cost_version: int
    num_edges: int
    elapsed_seconds: float

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (exact :meth:`from_dict` round-trip)."""
        return {
            "kind": "publish_result",
            "slice": self.slice_name,
            "sequence": self.sequence,
            "cost_version": self.cost_version,
            "num_edges": self.num_edges,
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PublishResult":
        return cls(
            slice_name=data["slice"],
            sequence=int(data["sequence"]),
            cost_version=int(data["cost_version"]),
            num_edges=int(data["num_edges"]),
            elapsed_seconds=float(data["elapsed_seconds"]),
        )


class CostPublisher:
    """Sequenced :class:`CostUpdate` feed into one live routing service.

    ``slice_names`` lists the scenario slices every accepted batch is
    pushed to (``None`` = the service's default slice).  ``start_sequence``
    seeds the feed counter — a publisher resumed over a restored snapshot
    should start *past* the snapshot's feed position so its updates apply
    rather than skip.
    """

    def __init__(
        self,
        service: RoutingService,
        *,
        slice_names: Sequence[str] | None = None,
        source: str = "learning",
        start_sequence: int = 1,
    ) -> None:
        if start_sequence < 0:
            raise ValueError("start_sequence must be >= 0")
        names = (
            (service.default_slice,)
            if slice_names is None
            else tuple(slice_names)
        )
        if not names:
            raise ValueError("need at least one slice to publish to")
        unknown = set(names) - set(service.slice_names)
        if unknown:
            raise ValueError(
                f"unknown slices {sorted(unknown)}; service has "
                f"{list(service.slice_names)}"
            )
        self.service = service
        self.slice_names = names
        self.source = source
        self._next_sequence = int(start_sequence)

    @property
    def next_sequence(self) -> int:
        """The sequence number the next published update will carry."""
        return self._next_sequence

    def publish(
        self, histograms: Mapping[int, DiscreteDistribution]
    ) -> list[PublishResult]:
        """Push one accepted batch to every configured slice.

        Each slice gets its own :class:`CostUpdate` under the next feed
        sequence number; the per-update latency covers building the update
        (validation included) plus the service's hot-swap.
        """
        if not histograms:
            raise ValueError("a publish batch needs at least one edge")
        results: list[PublishResult] = []
        for name in self.slice_names:
            begin = time.perf_counter()
            update = CostUpdate(
                costs=dict(histograms),
                slice_name=name,
                source=self.source,
                sequence=self._next_sequence,
            )
            version = self.service.apply_cost_update(update)
            results.append(
                PublishResult(
                    slice_name=name,
                    sequence=self._next_sequence,
                    cost_version=version,
                    num_edges=len(update),
                    elapsed_seconds=time.perf_counter() - begin,
                )
            )
            self._next_sequence += 1
        return results
