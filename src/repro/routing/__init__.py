"""Probabilistic budget routing.

The public entry point is :class:`RoutingEngine` — one facade over the
paper's best-first PBR search (with the four prunings), the anytime
extension, the baselines (expected-time Dijkstra, exhaustive oracle), batch
routing (optionally sharded across a worker pool), streaming anytime
sweeps, multi-budget vectors and k-best route frontiers.  Strategies plug
in through :func:`register_strategy`.
"""

from .anytime import AnytimePoint
from .baselines import all_simple_paths, exhaustive_best_path, expected_time_path
from .budget import PruningConfig
from .engine import (
    BatchResult,
    RoutingEngine,
    RoutingStrategy,
    available_strategies,
    register_strategy,
)
from .heuristics import OptimisticHeuristic, clear_heuristic_cache
from .query import (
    MAX_BUDGET_TICKS,
    DepartWhenResult,
    KBestResult,
    MultiBudgetResult,
    RoutingQuery,
    RoutingResult,
    SearchStats,
    budget_ticks_for_departure,
    normalize_budgets,
    normalize_departures,
    result_from_dict,
)

__all__ = [
    "AnytimePoint",
    "BatchResult",
    "DepartWhenResult",
    "KBestResult",
    "MAX_BUDGET_TICKS",
    "MultiBudgetResult",
    "OptimisticHeuristic",
    "PruningConfig",
    "RoutingEngine",
    "RoutingQuery",
    "RoutingResult",
    "RoutingStrategy",
    "SearchStats",
    "all_simple_paths",
    "available_strategies",
    "budget_ticks_for_departure",
    "clear_heuristic_cache",
    "exhaustive_best_path",
    "expected_time_path",
    "normalize_budgets",
    "normalize_departures",
    "register_strategy",
    "result_from_dict",
]
