"""Probabilistic budget routing.

Best-first PBR search with the paper's four prunings (optimistic heuristic,
pivot path, cost shifting, stochastic dominance), the anytime extension, and
baselines (expected-time Dijkstra, exhaustive oracle).
"""

from .anytime import AnytimePoint, AnytimeRouter
from .baselines import all_simple_paths, exhaustive_best_path, expected_time_path
from .budget import ProbabilisticBudgetRouter, PruningConfig
from .heuristics import OptimisticHeuristic, clear_heuristic_cache
from .query import RoutingQuery, RoutingResult, SearchStats

__all__ = [
    "AnytimePoint",
    "AnytimeRouter",
    "OptimisticHeuristic",
    "clear_heuristic_cache",
    "ProbabilisticBudgetRouter",
    "PruningConfig",
    "RoutingQuery",
    "RoutingResult",
    "SearchStats",
    "all_simple_paths",
    "exhaustive_best_path",
    "expected_time_path",
]
