"""Probabilistic budget routing.

The public entry point is :class:`RoutingEngine` — one facade over the
paper's best-first PBR search (with the four prunings), the anytime
extension, the baselines (expected-time Dijkstra, exhaustive oracle), batch
routing and streaming anytime sweeps.  Strategies plug in through
:func:`register_strategy`.  The legacy per-algorithm constructors
(:class:`ProbabilisticBudgetRouter`, :class:`AnytimeRouter`) survive as
deprecated shims.
"""

from .anytime import AnytimePoint, AnytimeRouter
from .baselines import all_simple_paths, exhaustive_best_path, expected_time_path
from .budget import ProbabilisticBudgetRouter, PruningConfig
from .engine import (
    BatchResult,
    RoutingEngine,
    RoutingStrategy,
    available_strategies,
    register_strategy,
)
from .heuristics import OptimisticHeuristic, clear_heuristic_cache
from .query import MAX_BUDGET_TICKS, RoutingQuery, RoutingResult, SearchStats

__all__ = [
    "AnytimePoint",
    "AnytimeRouter",
    "BatchResult",
    "MAX_BUDGET_TICKS",
    "OptimisticHeuristic",
    "clear_heuristic_cache",
    "ProbabilisticBudgetRouter",
    "PruningConfig",
    "RoutingEngine",
    "RoutingQuery",
    "RoutingResult",
    "RoutingStrategy",
    "SearchStats",
    "all_simple_paths",
    "available_strategies",
    "exhaustive_best_path",
    "expected_time_path",
    "register_strategy",
]
