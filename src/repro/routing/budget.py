"""Probabilistic Budget Routing — the paper's base algorithm.

Given source, destination and a time budget ``t``, find the path maximising
``P(arrival within t)``.  Best-first search over labels (partial paths with
cost distributions computed by any :class:`~repro.core.models.CostCombiner`),
with the paper's four prunings, each independently switchable for ablation:

(a) **optimistic heuristic** — an A*-inspired lower bound on remaining cost
    from a reverse Dijkstra over minimum edge times; labels that cannot reach
    the destination are dropped immediately;
(b) **pivot path** — the most promising complete path found so far; any
    label whose upper-bound probability cannot beat the pivot is pruned, and
    the search terminates when the best queued label cannot beat it either;
(c) **distribution cost shifting** — the upper bound shifts the label's
    distribution by the optimistic remaining cost before evaluating the
    budget CDF, tightening (a)+(b) substantially;
(d) **stochastic dominance** — per-vertex Pareto frontiers; a label
    first-order dominated by a previously kept label at the same vertex is
    discarded.

The **anytime extension** is the ``time_limit_seconds`` parameter: when the
wall clock expires the search stops and returns the pivot path (the paper's
"acceptable maximum run-time x" input).

Hot-path design (see PERFORMANCE.md)
------------------------------------
Labels are slotted parent-chain nodes with **no** per-label visited set: the
simple-path check walks the parent chain once per *expanded* label (bounded
by the path length) instead of copying a frozenset for every *generated*
label — most generated labels are pruned without ever being expanded.  Label
admission performs exactly one heuristic-table probe and one cached-CDF read,
and the reverse-Dijkstra heuristic itself is shared across queries through
:meth:`OptimisticHeuristic.shared`.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass
from typing import Sequence

from ..core.models import CostCombiner
from ..histograms import DiscreteDistribution, ParetoFrontier, weakly_dominates
from ..network import Edge, RoadNetwork
from .heuristics import OptimisticHeuristic
from .query import (
    KBestResult,
    MultiBudgetResult,
    RoutingQuery,
    RoutingResult,
    SearchStats,
)

__all__ = ["PruningConfig"]

#: Anytime deadline granularity: inside a single expansion the wall clock is
#: re-checked every this-many *generated* labels.  Checking only per heap pop
#: let one high-out-degree vertex (or one expensive convolution batch) blow
#: ``time_limit_seconds`` by a whole expansion; checking every label would
#: put a ``perf_counter`` call on the admission fast path.  At 256 the worst
#: overrun is bounded by 256 admissions (~tens of microseconds), far below
#: any serving deadline.
_DEADLINE_CHECK_INTERVAL = 256


@dataclass(frozen=True)
class PruningConfig:
    """Which prunings the search applies (all on = the paper's algorithm)."""

    use_heuristic: bool = True
    use_pivot: bool = True
    use_cost_shifting: bool = True
    use_dominance: bool = True
    max_frontier_size: int | None = None

    def __post_init__(self) -> None:
        if self.use_cost_shifting and not self.use_heuristic:
            raise ValueError("cost shifting requires the optimistic heuristic")
        if self.max_frontier_size is not None and self.max_frontier_size < 1:
            raise ValueError("max_frontier_size must be >= 1 when given")


class _Label:
    """A partial path: head vertex, cost distribution, parent chain.

    The vertices on the label's own path are recovered by walking the parent
    chain (plus the query source), so extending a label allocates nothing
    beyond the label object itself.
    """

    __slots__ = ("vertex", "distribution", "edge", "parent")

    def __init__(
        self,
        vertex: int,
        distribution: DiscreteDistribution,
        edge: Edge | None,
        parent: "_Label | None",
    ) -> None:
        self.vertex = vertex
        self.distribution = distribution
        self.edge = edge
        self.parent = parent

    def path(self) -> tuple[Edge, ...]:
        edges: list[Edge] = []
        node: _Label | None = self
        while node is not None and node.edge is not None:
            edges.append(node.edge)
            node = node.parent
        edges.reverse()
        return tuple(edges)


class _BudgetSearch:
    """Best-first PBR search over any cost combiner (engine internal).

    The search explores simple paths (no vertex revisits within a label's
    own path) — with non-negative travel times a revisit can never increase
    the arrival probability.

    This class is the implementation behind the public
    :class:`~repro.routing.engine.RoutingEngine` facade; external callers
    should go through the engine, which owns the shared heuristic state and
    exposes the strategy registry, batch and streaming modes.
    """

    def __init__(
        self,
        network: RoadNetwork,
        combiner: CostCombiner,
        *,
        pruning: PruningConfig | None = None,
        backend: str = "auto",
        landmarks: int | None = None,
        clip_distributions: bool = True,
    ) -> None:
        if backend not in ("auto", "scalar", "columnar"):
            raise ValueError(
                f"backend must be 'auto', 'scalar' or 'columnar', got {backend!r}"
            )
        if landmarks is not None and landmarks < 1:
            raise ValueError("landmarks must be >= 1 when given")
        self.network = network
        self.combiner = combiner
        self.pruning = pruning or PruningConfig()
        #: Search-core selection for single-budget ``route`` queries.
        #: ``"scalar"`` is the label-at-a-time reference core; ``"columnar"``
        #: forces the generation-at-a-time numpy core (raises when the
        #: combiner cannot support it); ``"auto"`` picks columnar only on
        #: networks large enough for the batched kernels to pay for their
        #: setup, so small worlds (and every golden fixture) keep the scalar
        #: core's exploration order bit for bit.
        self.backend = backend
        #: When set, the columnar core derives its lower bounds from a
        #: ``k``-landmark ALT table (built once per cost-table version and
        #: shared across *all* targets) instead of the per-target reverse
        #: Dijkstra.  Weaker bounds, no per-target setup cost.
        self.landmarks = landmarks
        #: Debug knob for the clip-boundary equivalence suite: ``False``
        #: disables `_clip` so searches run on full, unfolded distributions.
        self.clip_distributions = clip_distributions

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _clip(self, dist: DiscreteDistribution, budget: int) -> DiscreteDistribution:
        """Fold all mass beyond ``budget`` into one cell.

        Exact for the objective *under convolution*: mass above the budget
        contributes nothing to ``P(cost <= budget)`` wherever it sits, and
        folding both operands of any dominance comparison at the same
        boundary preserves the CDF comparison below it.  Learned combiners
        extract features from the label distribution, so folding would
        corrupt their inputs — clipping is skipped unless the combiner
        declares ``exact_under_truncation``.
        """
        if not self.combiner.exact_under_truncation or not self.clip_distributions:
            return dist
        max_support = budget + 2 - dist.offset
        if max_support < 1:
            # Entire support is beyond the budget; keep a single cell.
            return dist.truncate(1)
        return dist.truncate(max_support)

    def _columnar_applicable(self, query: RoutingQuery) -> bool:
        """Whether this ``route`` query should run on the columnar core.

        The columnar core needs a combiner whose ``combine`` is a plain
        convolution (``vectorized_convolution``), a bounded budget window for
        its dense rows, unbounded frontiers (``max_frontier_size`` eviction
        is a scalar-core policy), and clipping enabled (the dense window *is*
        the clip).  Under ``"auto"`` it additionally requires a network large
        enough that the batched kernels beat the scalar loop's lower setup
        cost — which also keeps every small-world test and golden fixture on
        the scalar core's exact exploration order.
        """
        from .columnar import COLUMNAR_AUTO_MIN_EDGES, COLUMNAR_MAX_WINDOW

        if self.backend == "scalar":
            return False
        capable = (
            getattr(self.combiner, "vectorized_convolution", False)
            and self.pruning.max_frontier_size is None
            and self.clip_distributions
            and query.budget + 2 <= COLUMNAR_MAX_WINDOW
        )
        if self.backend == "columnar":
            if not capable:
                raise ValueError(
                    "backend='columnar' requires a vectorized-convolution "
                    "combiner, no max_frontier_size, clipping enabled, and "
                    f"budget + 2 <= {COLUMNAR_MAX_WINDOW}"
                )
            return True
        return capable and self.network.num_edges >= COLUMNAR_AUTO_MIN_EDGES

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def route(
        self,
        query: RoutingQuery,
        *,
        time_limit_seconds: float | None = None,
        heuristic: OptimisticHeuristic | None = None,
    ) -> RoutingResult:
        """Answer one query; ``time_limit_seconds`` enables anytime mode.

        Always returns a result: the optimal path when the search ran to
        completion (``stats.completed``), the pivot path when the anytime
        limit expired, and an empty path when the target is unreachable.

        ``heuristic`` lets callers inject a pre-built (shared) optimistic
        heuristic for the query target; by default one is taken from the
        process-wide :meth:`OptimisticHeuristic.shared` cache, so repeated
        queries to one destination pay for the reverse Dijkstra once.

        Depending on :attr:`backend`, the query is answered by this scalar
        label-at-a-time loop or by the batched generation-at-a-time core in
        :mod:`repro.routing.columnar` (same probabilities to 2e-12; routes
        identical up to equal-probability ties).
        """
        if self._columnar_applicable(query):
            from .columnar import columnar_route

            return columnar_route(
                self,
                query,
                time_limit_seconds=time_limit_seconds,
                heuristic=heuristic,
            )
        start_time = time.perf_counter()
        stats = SearchStats()
        if heuristic is None:
            heuristic = OptimisticHeuristic.shared(
                self.network, self.combiner.costs, query.target
            )
        h_table = heuristic.table

        if query.source not in h_table:
            stats.completed = True
            stats.runtime_seconds = time.perf_counter() - start_time
            return RoutingResult(query, (), None, 0.0, stats)

        pruning = self.pruning
        use_heuristic = pruning.use_heuristic
        use_pivot = pruning.use_pivot
        use_cost_shifting = pruning.use_cost_shifting
        use_dominance = pruning.use_dominance
        budget = query.budget
        target = query.target

        pivot: _Label | None = None
        pivot_probability = -1.0
        frontiers: dict[int, ParetoFrontier] = {}
        counter = itertools.count()
        heap: list[tuple[float, int, _Label]] = []
        heappush = heapq.heappush
        deadline = (
            None
            if time_limit_seconds is None
            else start_time + time_limit_seconds
        )
        expired = False

        def consider(label: _Label) -> None:
            """Apply admission prunings and push the label."""
            nonlocal expired
            stats.labels_generated += 1
            if (
                deadline is not None
                and stats.labels_generated % _DEADLINE_CHECK_INTERVAL == 0
                and time.perf_counter() > deadline
            ):
                # Re-check the clock *inside* the expansion so one
                # high-out-degree vertex cannot blow the anytime deadline by
                # a whole expansion; the flag stops the enclosing edge loop.
                expired = True
                return
            vertex = label.vertex
            dist = label.distribution
            if use_heuristic:
                remaining = h_table.get(vertex)
                if remaining is None:
                    stats.pruned_unreachable += 1
                    return
                if use_cost_shifting:
                    bound = dist.prob_within(budget - int(remaining))
                else:
                    bound = dist.prob_within(budget)
            else:
                bound = dist.prob_within(budget)
            if bound <= 0.0:
                stats.pruned_by_bound += 1
                return
            if use_pivot and bound <= pivot_probability:
                stats.pruned_by_bound += 1
                return
            if use_dominance and vertex != target:
                frontier = frontiers.get(vertex)
                if frontier is None:
                    frontier = ParetoFrontier(max_size=pruning.max_frontier_size)
                    frontiers[vertex] = frontier
                if not frontier.add(dist):
                    stats.pruned_by_dominance += 1
                    return
            heappush(heap, (-bound, next(counter), label))

        for edge in self.network.out_edges(query.source):
            if expired:
                break
            if edge.target == query.source:
                continue
            dist = self._clip(self.combiner.edge_cost(edge), budget)
            consider(_Label(edge.target, dist, edge, None))

        out_edges = self.network.out_edges
        combine = self.combiner.combine
        while heap:
            if expired or (
                deadline is not None and time.perf_counter() > deadline
            ):
                stats.completed = False
                break
            neg_bound, _, label = heapq.heappop(heap)
            bound = -neg_bound
            if use_pivot and bound <= pivot_probability:
                # Best-first order: nothing left can beat the pivot.
                stats.bound_terminations += 1
                break
            if label.vertex == target:
                probability = label.distribution.prob_within(budget)
                if probability > pivot_probability:
                    pivot = label
                    pivot_probability = probability
                    stats.pivot_updates += 1
                continue
            stats.labels_expanded += 1
            # Simple-path constraint: collect this label's path vertices by
            # one parent-chain walk (cost bounded by path length), shared by
            # every outgoing edge below.
            path_vertices = {query.source}
            node: _Label | None = label
            while node is not None:
                path_vertices.add(node.vertex)
                node = node.parent
            for edge in out_edges(label.vertex):
                if expired:
                    break
                if edge.target in path_vertices:
                    continue
                combined = self._clip(combine(label.distribution, edge), budget)
                consider(_Label(edge.target, combined, edge, label))

        if expired:
            stats.completed = False
        stats.runtime_seconds = time.perf_counter() - start_time
        if pivot is None:
            # No complete path beat probability 0 within the budget (or the
            # anytime limit fired before any arrival) — fall back to the
            # optimistically fastest path so callers always get a route.
            fallback = self._fallback_route(query.source, query.target)
            if fallback is None:
                return RoutingResult(query, (), None, 0.0, stats)
            path, dist = fallback
            return RoutingResult(
                query, path, dist, dist.prob_within(query.budget), stats
            )
        return RoutingResult(
            query,
            pivot.path(),
            pivot.distribution,
            pivot_probability,
            stats,
        )

    def _fallback_route(
        self, source: int, target: int
    ) -> tuple[tuple[Edge, ...], DiscreteDistribution] | None:
        """The optimistically fastest path and its cost, or None if none."""
        from ..network.paths import shortest_path

        try:
            path = shortest_path(
                self.network,
                source,
                target,
                weight=lambda edge: float(self.combiner.costs.min_ticks(edge)),
            )
        except ValueError:
            return None
        from ..core.path_cost import PathCostComputer

        return tuple(path), PathCostComputer(self.combiner).cost(path)

    # ------------------------------------------------------------------
    # Multi-budget search
    # ------------------------------------------------------------------

    def route_multi_budget(
        self,
        query: RoutingQuery,
        budgets: Sequence[int],
        *,
        time_limit_seconds: float | None = None,
        heuristic: OptimisticHeuristic | None = None,
    ) -> MultiBudgetResult:
        """Answer one source/target pair for a whole budget vector at once.

        A single label search serves every budget: per-vertex Pareto
        frontiers (dominance is budget-independent), the optimistic
        heuristic and every convolution are shared, while the pivot pruning
        generalises to a per-budget pivot vector — a label survives when it
        can still improve the answer of *some* budget.  Per-budget answers
        match independent :meth:`route` runs (identical probabilities; routes
        identical up to equal-probability ties, which the two exploration
        orders may break differently).

        ``budgets`` must be ascending, unique, with ``budgets[-1] ==
        query.budget`` (the engine's ``route_multi_budget`` helper constructs
        both consistently).
        """
        start_time = time.perf_counter()
        stats = SearchStats()
        budgets = tuple(budgets)
        if not budgets or any(
            b <= a for a, b in zip(budgets, budgets[1:])
        ):
            raise ValueError("budgets must be non-empty and strictly ascending")
        if budgets[-1] != query.budget:
            raise ValueError("query.budget must equal max(budgets)")
        queries = tuple(
            RoutingQuery(query.source, query.target, b) for b in budgets
        )
        if heuristic is None:
            heuristic = OptimisticHeuristic.shared(
                self.network, self.combiner.costs, query.target
            )
        h_table = heuristic.table

        if query.source not in h_table:
            stats.completed = True
            stats.runtime_seconds = time.perf_counter() - start_time
            return MultiBudgetResult(
                query=query,
                budgets=budgets,
                results=tuple(RoutingResult(q, (), None, 0.0) for q in queries),
                stats=stats,
            )

        pruning = self.pruning
        use_heuristic = pruning.use_heuristic
        use_pivot = pruning.use_pivot
        use_cost_shifting = pruning.use_cost_shifting
        use_dominance = pruning.use_dominance
        max_budget = budgets[-1]
        target = query.target
        num_budgets = len(budgets)
        descending = range(num_budgets - 1, -1, -1)

        #: Best complete probability per budget (-1 = no positive-probability
        #: arrival yet), and the label that achieved it.
        pivots = [-1.0] * num_budgets
        best: list[_Label | None] = [None] * num_budgets
        frontiers: dict[int, ParetoFrontier] = {}
        counter = itertools.count()
        heap: list[tuple[float, int, _Label]] = []
        heappush = heapq.heappush
        deadline = (
            None
            if time_limit_seconds is None
            else start_time + time_limit_seconds
        )
        expired = False

        def improvable(dist: DiscreteDistribution, shift: int) -> bool:
            """Can any budget's answer still be beaten by this label?"""
            for i in descending:
                bound = dist.prob_within(budgets[i] - shift)
                if bound <= 0.0:
                    # CDF monotone: smaller budgets bound even lower.
                    return False
                if bound > pivots[i]:
                    return True
            return False

        def consider(label: _Label) -> None:
            nonlocal expired
            stats.labels_generated += 1
            if (
                deadline is not None
                and stats.labels_generated % _DEADLINE_CHECK_INTERVAL == 0
                and time.perf_counter() > deadline
            ):
                expired = True
                return
            vertex = label.vertex
            dist = label.distribution
            shift = 0
            if use_heuristic:
                remaining = h_table.get(vertex)
                if remaining is None:
                    stats.pruned_unreachable += 1
                    return
                if use_cost_shifting:
                    shift = int(remaining)
            bound = dist.prob_within(max_budget - shift)
            if bound <= 0.0:
                stats.pruned_by_bound += 1
                return
            if use_pivot and not improvable(dist, shift):
                stats.pruned_by_bound += 1
                return
            if use_dominance and vertex != target:
                frontier = frontiers.get(vertex)
                if frontier is None:
                    frontier = ParetoFrontier(max_size=pruning.max_frontier_size)
                    frontiers[vertex] = frontier
                if not frontier.add(dist):
                    stats.pruned_by_dominance += 1
                    return
            heappush(heap, (-bound, next(counter), label))

        for edge in self.network.out_edges(query.source):
            if expired:
                break
            if edge.target == query.source:
                continue
            dist = self._clip(self.combiner.edge_cost(edge), max_budget)
            consider(_Label(edge.target, dist, edge, None))

        out_edges = self.network.out_edges
        combine = self.combiner.combine
        while heap:
            if expired or (
                deadline is not None and time.perf_counter() > deadline
            ):
                stats.completed = False
                break
            neg_bound, _, label = heapq.heappop(heap)
            bound = -neg_bound
            if use_pivot and bound <= pivots[0]:
                # Best-first on the max-budget bound: every remaining label's
                # bound at budget i is <= this bound <= min(pivots), so no
                # budget's answer can improve.
                stats.bound_terminations += 1
                break
            if label.vertex == target:
                dist = label.distribution
                improved = False
                for i in descending:
                    probability = dist.prob_within(budgets[i])
                    if probability <= 0.0:
                        break
                    if probability > pivots[i]:
                        pivots[i] = probability
                        best[i] = label
                        improved = True
                if improved:
                    stats.pivot_updates += 1
                continue
            if use_pivot:
                # Pivots may have moved since this label was queued.
                shift = 0
                if use_heuristic and use_cost_shifting:
                    shift = int(h_table[label.vertex])
                if not improvable(label.distribution, shift):
                    stats.pruned_by_bound += 1
                    continue
            stats.labels_expanded += 1
            path_vertices = {query.source}
            node: _Label | None = label
            while node is not None:
                path_vertices.add(node.vertex)
                node = node.parent
            for edge in out_edges(label.vertex):
                if expired:
                    break
                if edge.target in path_vertices:
                    continue
                combined = self._clip(combine(label.distribution, edge), max_budget)
                consider(_Label(edge.target, combined, edge, label))

        if expired:
            stats.completed = False
        stats.runtime_seconds = time.perf_counter() - start_time
        fallback: tuple[tuple[Edge, ...], DiscreteDistribution] | None = None
        if any(item is None for item in best):
            fallback = self._fallback_route(query.source, query.target)
        results = []
        for i, member_query in enumerate(queries):
            label = best[i]
            if label is not None:
                results.append(
                    RoutingResult(
                        member_query, label.path(), label.distribution, pivots[i]
                    )
                )
            elif fallback is not None:
                path, dist = fallback
                results.append(
                    RoutingResult(
                        member_query, path, dist, dist.prob_within(budgets[i])
                    )
                )
            else:
                results.append(RoutingResult(member_query, (), None, 0.0))
        return MultiBudgetResult(
            query=query, budgets=budgets, results=tuple(results), stats=stats
        )

    # ------------------------------------------------------------------
    # K-best search
    # ------------------------------------------------------------------

    def route_kbest(
        self,
        query: RoutingQuery,
        k: int,
        *,
        time_limit_seconds: float | None = None,
        heuristic: OptimisticHeuristic | None = None,
    ) -> KBestResult:
        """The top-``k`` non-dominated routes at the target, best first.

        The search is the PBR best-first label search with one change: the
        pivot pruning threshold is the k-th best arrival probability among
        the current target frontier (instead of the single best), so every
        route that can still enter the top k stays alive.  Complete arrivals
        are kept as an antichain under weak stochastic dominance — a route
        whose arrival distribution is dominated offers no budget at which it
        would be the better choice, mirroring the interior dominance pruning.

        Unlike :meth:`route`, this search runs on *unclipped* distributions:
        folding mass beyond the budget is exact for the single-budget
        objective, but dominance on folded distributions only compares CDFs
        inside the window — a strictly stronger relation that would evict
        antichain members which are merely better *beyond* the queried
        budget, returning a different route set than the unclipped search
        (see tests/routing/test_clip_boundary.py).

        With ``k == 1`` the answer's single route carries the same maximal
        probability as :meth:`route`.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        start_time = time.perf_counter()
        stats = SearchStats()
        if heuristic is None:
            heuristic = OptimisticHeuristic.shared(
                self.network, self.combiner.costs, query.target
            )
        h_table = heuristic.table

        if query.source not in h_table:
            stats.completed = True
            stats.runtime_seconds = time.perf_counter() - start_time
            return KBestResult(query=query, k=k, routes=(), stats=stats)

        pruning = self.pruning
        use_heuristic = pruning.use_heuristic
        use_pivot = pruning.use_pivot
        use_cost_shifting = pruning.use_cost_shifting
        use_dominance = pruning.use_dominance
        budget = query.budget
        target = query.target

        #: Non-dominated complete arrivals: (label, probability) pairs.
        candidates: list[tuple[_Label, float]] = []
        #: Pruning threshold: the k-th largest *distinct* arrival probability
        #: (-1 until k distinct values exist).  Distinct values are what makes
        #: the threshold monotone and the pruning sound: an eviction replaces
        #: frontier members with an equal-probability dominator (arrivals pop
        #: in non-increasing probability order, so a dominator can never have
        #: a strictly higher budget probability than its victims), which can
        #: shrink the member count below k but never removes a probability
        #: value — so at least k frontier members >= threshold always survive.
        threshold = -1.0
        frontiers: dict[int, ParetoFrontier] = {}
        counter = itertools.count()
        heap: list[tuple[float, int, _Label]] = []
        heappush = heapq.heappush
        deadline = (
            None
            if time_limit_seconds is None
            else start_time + time_limit_seconds
        )
        expired = False

        def consider(label: _Label) -> None:
            nonlocal expired
            stats.labels_generated += 1
            if (
                deadline is not None
                and stats.labels_generated % _DEADLINE_CHECK_INTERVAL == 0
                and time.perf_counter() > deadline
            ):
                expired = True
                return
            vertex = label.vertex
            dist = label.distribution
            if use_heuristic:
                remaining = h_table.get(vertex)
                if remaining is None:
                    stats.pruned_unreachable += 1
                    return
                if use_cost_shifting:
                    bound = dist.prob_within(budget - int(remaining))
                else:
                    bound = dist.prob_within(budget)
            else:
                bound = dist.prob_within(budget)
            if bound <= 0.0:
                stats.pruned_by_bound += 1
                return
            if use_pivot and bound <= threshold:
                stats.pruned_by_bound += 1
                return
            if use_dominance and vertex != target:
                frontier = frontiers.get(vertex)
                if frontier is None:
                    frontier = ParetoFrontier(max_size=pruning.max_frontier_size)
                    frontiers[vertex] = frontier
                if not frontier.add(dist):
                    stats.pruned_by_dominance += 1
                    return
            heappush(heap, (-bound, next(counter), label))

        for edge in self.network.out_edges(query.source):
            if expired:
                break
            if edge.target == query.source:
                continue
            consider(_Label(edge.target, self.combiner.edge_cost(edge), edge, None))

        out_edges = self.network.out_edges
        combine = self.combiner.combine
        while heap:
            if expired or (
                deadline is not None and time.perf_counter() > deadline
            ):
                stats.completed = False
                break
            neg_bound, _, label = heapq.heappop(heap)
            bound = -neg_bound
            if use_pivot and bound <= threshold:
                # Best-first order: nothing left can crack the top k.
                stats.bound_terminations += 1
                break
            if label.vertex == target:
                dist = label.distribution
                if any(
                    weakly_dominates(kept.distribution, dist)
                    for kept, _ in candidates
                ):
                    continue
                candidates[:] = [
                    (kept, p)
                    for kept, p in candidates
                    if not weakly_dominates(dist, kept.distribution)
                ]
                candidates.append((label, dist.prob_within(budget)))
                stats.pivot_updates += 1
                distinct = sorted({p for _, p in candidates}, reverse=True)
                if len(distinct) >= k:
                    threshold = distinct[k - 1]
                continue
            stats.labels_expanded += 1
            path_vertices = {query.source}
            node: _Label | None = label
            while node is not None:
                path_vertices.add(node.vertex)
                node = node.parent
            for edge in out_edges(label.vertex):
                if expired:
                    break
                if edge.target in path_vertices:
                    continue
                combined = combine(label.distribution, edge)
                consider(_Label(edge.target, combined, edge, label))

        if expired:
            stats.completed = False
        stats.runtime_seconds = time.perf_counter() - start_time
        if not candidates:
            # Mirror :meth:`route`: always give the caller a route when one
            # exists, even at (near-)zero probability.
            fallback = self._fallback_route(query.source, query.target)
            if fallback is None:
                return KBestResult(query=query, k=k, routes=(), stats=stats)
            path, dist = fallback
            route = RoutingResult(query, path, dist, dist.prob_within(budget))
            return KBestResult(query=query, k=k, routes=(route,), stats=stats)
        ranked = sorted(
            range(len(candidates)), key=lambda i: (-candidates[i][1], i)
        )[:k]
        routes = tuple(
            RoutingResult(
                query,
                candidates[i][0].path(),
                candidates[i][0].distribution,
                candidates[i][1],
            )
            for i in ranked
        )
        return KBestResult(query=query, k=k, routes=routes, stats=stats)
