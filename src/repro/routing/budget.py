"""Probabilistic Budget Routing — the paper's base algorithm.

Given source, destination and a time budget ``t``, find the path maximising
``P(arrival within t)``.  Best-first search over labels (partial paths with
cost distributions computed by any :class:`~repro.core.models.CostCombiner`),
with the paper's four prunings, each independently switchable for ablation:

(a) **optimistic heuristic** — an A*-inspired lower bound on remaining cost
    from a reverse Dijkstra over minimum edge times; labels that cannot reach
    the destination are dropped immediately;
(b) **pivot path** — the most promising complete path found so far; any
    label whose upper-bound probability cannot beat the pivot is pruned, and
    the search terminates when the best queued label cannot beat it either;
(c) **distribution cost shifting** — the upper bound shifts the label's
    distribution by the optimistic remaining cost before evaluating the
    budget CDF, tightening (a)+(b) substantially;
(d) **stochastic dominance** — per-vertex Pareto frontiers; a label
    first-order dominated by a previously kept label at the same vertex is
    discarded.

The **anytime extension** is the ``time_limit_seconds`` parameter: when the
wall clock expires the search stops and returns the pivot path (the paper's
"acceptable maximum run-time x" input).

Hot-path design (see PERFORMANCE.md)
------------------------------------
Labels are slotted parent-chain nodes with **no** per-label visited set: the
simple-path check walks the parent chain once per *expanded* label (bounded
by the path length) instead of copying a frozenset for every *generated*
label — most generated labels are pruned without ever being expanded.  Label
admission performs exactly one heuristic-table probe and one cached-CDF read,
and the reverse-Dijkstra heuristic itself is shared across queries through
:meth:`OptimisticHeuristic.shared`.
"""

from __future__ import annotations

import heapq
import itertools
import time
import warnings
from dataclasses import dataclass

from ..core.models import CostCombiner
from ..histograms import DiscreteDistribution, ParetoFrontier
from ..network import Edge, RoadNetwork
from .heuristics import OptimisticHeuristic
from .query import RoutingQuery, RoutingResult, SearchStats

__all__ = ["PruningConfig", "ProbabilisticBudgetRouter"]


@dataclass(frozen=True)
class PruningConfig:
    """Which prunings the search applies (all on = the paper's algorithm)."""

    use_heuristic: bool = True
    use_pivot: bool = True
    use_cost_shifting: bool = True
    use_dominance: bool = True
    max_frontier_size: int | None = None

    def __post_init__(self) -> None:
        if self.use_cost_shifting and not self.use_heuristic:
            raise ValueError("cost shifting requires the optimistic heuristic")
        if self.max_frontier_size is not None and self.max_frontier_size < 1:
            raise ValueError("max_frontier_size must be >= 1 when given")


class _Label:
    """A partial path: head vertex, cost distribution, parent chain.

    The vertices on the label's own path are recovered by walking the parent
    chain (plus the query source), so extending a label allocates nothing
    beyond the label object itself.
    """

    __slots__ = ("vertex", "distribution", "edge", "parent")

    def __init__(
        self,
        vertex: int,
        distribution: DiscreteDistribution,
        edge: Edge | None,
        parent: "_Label | None",
    ) -> None:
        self.vertex = vertex
        self.distribution = distribution
        self.edge = edge
        self.parent = parent

    def path(self) -> tuple[Edge, ...]:
        edges: list[Edge] = []
        node: _Label | None = self
        while node is not None and node.edge is not None:
            edges.append(node.edge)
            node = node.parent
        edges.reverse()
        return tuple(edges)


class _BudgetSearch:
    """Best-first PBR search over any cost combiner (engine internal).

    The search explores simple paths (no vertex revisits within a label's
    own path) — with non-negative travel times a revisit can never increase
    the arrival probability.

    This class is the implementation behind the public
    :class:`~repro.routing.engine.RoutingEngine` facade; external callers
    should go through the engine (the legacy
    :class:`ProbabilisticBudgetRouter` constructor below survives as a
    deprecated shim).
    """

    def __init__(
        self,
        network: RoadNetwork,
        combiner: CostCombiner,
        *,
        pruning: PruningConfig | None = None,
    ) -> None:
        self.network = network
        self.combiner = combiner
        self.pruning = pruning or PruningConfig()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _clip(self, dist: DiscreteDistribution, budget: int) -> DiscreteDistribution:
        """Fold all mass beyond ``budget`` into one cell.

        Exact for the objective *under convolution*: mass above the budget
        contributes nothing to ``P(cost <= budget)`` wherever it sits, and
        folding both operands of any dominance comparison at the same
        boundary preserves the CDF comparison below it.  Learned combiners
        extract features from the label distribution, so folding would
        corrupt their inputs — clipping is skipped unless the combiner
        declares ``exact_under_truncation``.
        """
        if not self.combiner.exact_under_truncation:
            return dist
        max_support = budget + 2 - dist.offset
        if max_support < 1:
            # Entire support is beyond the budget; keep a single cell.
            return dist.truncate(1)
        return dist.truncate(max_support)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def route(
        self,
        query: RoutingQuery,
        *,
        time_limit_seconds: float | None = None,
        heuristic: OptimisticHeuristic | None = None,
    ) -> RoutingResult:
        """Answer one query; ``time_limit_seconds`` enables anytime mode.

        Always returns a result: the optimal path when the search ran to
        completion (``stats.completed``), the pivot path when the anytime
        limit expired, and an empty path when the target is unreachable.

        ``heuristic`` lets callers inject a pre-built (shared) optimistic
        heuristic for the query target; by default one is taken from the
        process-wide :meth:`OptimisticHeuristic.shared` cache, so repeated
        queries to one destination pay for the reverse Dijkstra once.
        """
        start_time = time.perf_counter()
        stats = SearchStats()
        if heuristic is None:
            heuristic = OptimisticHeuristic.shared(
                self.network, self.combiner.costs, query.target
            )
        h_table = heuristic.table

        if query.source not in h_table:
            stats.completed = True
            stats.runtime_seconds = time.perf_counter() - start_time
            return RoutingResult(query, (), None, 0.0, stats)

        pruning = self.pruning
        use_heuristic = pruning.use_heuristic
        use_pivot = pruning.use_pivot
        use_cost_shifting = pruning.use_cost_shifting
        use_dominance = pruning.use_dominance
        budget = query.budget
        target = query.target

        pivot: _Label | None = None
        pivot_probability = -1.0
        frontiers: dict[int, ParetoFrontier] = {}
        counter = itertools.count()
        heap: list[tuple[float, int, _Label]] = []
        heappush = heapq.heappush

        def consider(label: _Label) -> None:
            """Apply admission prunings and push the label."""
            stats.labels_generated += 1
            vertex = label.vertex
            dist = label.distribution
            if use_heuristic:
                remaining = h_table.get(vertex)
                if remaining is None:
                    stats.pruned_unreachable += 1
                    return
                if use_cost_shifting:
                    bound = dist.prob_within(budget - int(remaining))
                else:
                    bound = dist.prob_within(budget)
            else:
                bound = dist.prob_within(budget)
            if bound <= 0.0:
                stats.pruned_by_bound += 1
                return
            if use_pivot and bound <= pivot_probability:
                stats.pruned_by_bound += 1
                return
            if use_dominance and vertex != target:
                frontier = frontiers.get(vertex)
                if frontier is None:
                    frontier = ParetoFrontier(max_size=pruning.max_frontier_size)
                    frontiers[vertex] = frontier
                if not frontier.add(dist):
                    stats.pruned_by_dominance += 1
                    return
            heappush(heap, (-bound, next(counter), label))

        for edge in self.network.out_edges(query.source):
            if edge.target == query.source:
                continue
            dist = self._clip(self.combiner.edge_cost(edge), budget)
            consider(_Label(edge.target, dist, edge, None))

        out_edges = self.network.out_edges
        combine = self.combiner.combine
        while heap:
            if time_limit_seconds is not None and (
                time.perf_counter() - start_time
            ) > time_limit_seconds:
                stats.completed = False
                break
            neg_bound, _, label = heapq.heappop(heap)
            bound = -neg_bound
            if use_pivot and bound <= pivot_probability:
                # Best-first order: nothing left can beat the pivot.
                stats.pruned_by_bound += 1
                break
            if label.vertex == target:
                probability = label.distribution.prob_within(budget)
                if probability > pivot_probability:
                    pivot = label
                    pivot_probability = probability
                    stats.pivot_updates += 1
                continue
            stats.labels_expanded += 1
            # Simple-path constraint: collect this label's path vertices by
            # one parent-chain walk (cost bounded by path length), shared by
            # every outgoing edge below.
            path_vertices = {query.source}
            node: _Label | None = label
            while node is not None:
                path_vertices.add(node.vertex)
                node = node.parent
            for edge in out_edges(label.vertex):
                if edge.target in path_vertices:
                    continue
                combined = self._clip(combine(label.distribution, edge), budget)
                consider(_Label(edge.target, combined, edge, label))

        stats.runtime_seconds = time.perf_counter() - start_time
        if pivot is None:
            # No complete path beat probability 0 within the budget (or the
            # anytime limit fired before any arrival) — fall back to the
            # optimistically fastest path so callers always get a route.
            from ..network.paths import shortest_path

            try:
                path = shortest_path(
                    self.network,
                    query.source,
                    query.target,
                    weight=lambda edge: float(self.combiner.costs.min_ticks(edge)),
                )
            except ValueError:
                return RoutingResult(query, (), None, 0.0, stats)
            from ..core.path_cost import PathCostComputer

            dist = PathCostComputer(self.combiner).cost(path)
            return RoutingResult(
                query, tuple(path), dist, dist.prob_within(query.budget), stats
            )
        return RoutingResult(
            query,
            pivot.path(),
            pivot.distribution,
            pivot_probability,
            stats,
        )


class ProbabilisticBudgetRouter(_BudgetSearch):
    """Deprecated direct-construction entry point for the PBR search.

    Kept as a thin working shim for existing callers; new code should route
    through :class:`repro.routing.RoutingEngine`, which owns the network,
    combiner and shared heuristic state and exposes batch/streaming modes.
    """

    def __init__(
        self,
        network: RoadNetwork,
        combiner: CostCombiner,
        *,
        pruning: PruningConfig | None = None,
    ) -> None:
        warnings.warn(
            "ProbabilisticBudgetRouter is deprecated; use "
            "repro.routing.RoutingEngine(network, combiner).route(query) "
            "(strategy='pbr') instead",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(network, combiner, pruning=pruning)
