"""Columnar generation-at-a-time PBR search core.

The scalar core in :mod:`repro.routing.budget` pops one label at a time from
a best-first heap; every convolution, CDF read and dominance check is a
separate Python call.  This module answers the same single-budget ``route``
query by expanding **whole frontier generations at once**:

* every label is a dense pmf row on the absolute tick grid ``[0, W)`` with
  ``W = budget + 2`` — the window *is* the scalar core's ``_clip`` (head
  ticks exact, all mass at or beyond ``budget + 1`` folded into the last
  cell);
* a generation's children are produced by one batched shift-convolution of
  the parent block against the per-edge kernel block
  (:func:`repro.histograms.operations.batched_window_convolve`), chunked to
  bound peak memory;
* bound/pivot screening is a matrix CDF read; stochastic dominance against
  resident frontier rows is a matrix comparison
  (:func:`repro.histograms.dominance.cdf_dominance_matrix`) that replicates
  :class:`~repro.histograms.ParetoFrontier.add` semantics sequentially per
  vertex group;
* labels live in an arena of parallel numpy arrays (vertex, parent index,
  edge id) instead of Python ``_Label`` chains — only the current
  generation's pmf rows are kept;
* the simple-path check is a lockstep vectorized walk up the parent chains;
* lower bounds come from the exact per-target
  :class:`~repro.routing.heuristics.OptimisticHeuristic` or, when the search
  was built with ``landmarks=k``, from a
  :class:`~repro.routing.landmarks.LandmarkTable` computed once per
  cost-table version and shared across **all** targets.

Because every pruning it applies is sound and it runs to exhaustion, the
columnar core returns the same maximal probability as the scalar core (to
float accumulation order, < 2e-12) and the same route up to
equal-probability ties; `tests/routing/test_columnar_parity.py` locks this
over random worlds for every pruning combination.

The generation order differs from the scalar core's best-first order in one
beneficial way: a generation's target arrivals raise the pivot *before* its
interior labels are screened, so the columnar core prunes at least as hard
as the scalar core for the same pivot state.
"""

from __future__ import annotations

import time
from collections import OrderedDict

import numpy as np

from ..histograms import DiscreteDistribution
from ..histograms.dominance import DOMINANCE_TOL
from ..histograms.operations import batched_window_convolve, trim_window_rows
from .heuristics import OptimisticHeuristic
from .query import RoutingQuery, RoutingResult, SearchStats

__all__ = [
    "columnar_route",
    "COLUMNAR_AUTO_MIN_EDGES",
    "COLUMNAR_MAX_WINDOW",
]

#: Under ``backend="auto"`` the columnar core only takes over on networks at
#: least this large; below it the scalar core's lower setup cost wins and —
#: just as importantly — every small-world test and golden fixture keeps the
#: scalar core's exact exploration order.
COLUMNAR_AUTO_MIN_EDGES = 2000

#: Upper bound on the dense window width ``budget + 2``.  Beyond this the
#: per-label rows stop fitting caches and the scalar core's sparse
#: distributions are the better representation.
COLUMNAR_MAX_WINDOW = 4096

#: Peak bytes for one expansion chunk's row block; the chunk row count is
#: derived from the window width.
_CHUNK_BYTES = 32 << 20

#: Best-bound labels dived per generation (see the incumbent-diving block
#: in :func:`columnar_route`).  Each dive costs one dot product plus any
#: not-yet-memoised suffix convolutions along its descent; a handful per
#: generation is enough to chase the scalar core's pivot trajectory.
_DIVES_PER_GENERATION = 4

#: Entries kept in the module-level CSR / kernel caches.  Keys embed object
#: ids, so values hold strong references to keep those ids stable.
_CACHE_SIZE = 4

_CSR_CACHE: "OrderedDict[tuple[int, int], _Csr]" = OrderedDict()
_KERNEL_CACHE: "OrderedDict[tuple[int, int, int, int], _EdgeKernels]" = OrderedDict()


class _Csr:
    """Compressed out-adjacency over a dense vertex indexing.

    Vertices are indexed by ascending vertex id; per-vertex edge runs keep
    the network's ``out_edges`` order so the columnar core generates children
    in the same per-vertex order as the scalar loop.
    """

    __slots__ = (
        "network",
        "order",
        "index_of",
        "indptr",
        "edge_ids",
        "edge_target",
        "num_vertices",
    )

    def __init__(self, network) -> None:
        self.network = network
        order = sorted(network.vertex_ids())
        self.order = order
        self.index_of = {v: i for i, v in enumerate(order)}
        num = len(order)
        self.num_vertices = num
        indptr = np.zeros(num + 1, dtype=np.int64)
        edge_ids: list[int] = []
        edge_target: list[int] = []
        for i, vertex in enumerate(order):
            out = network.out_edges(vertex)
            indptr[i + 1] = indptr[i] + len(out)
            for edge in out:
                edge_ids.append(edge.id)
                edge_target.append(self.index_of[edge.target])
        self.indptr = indptr
        self.edge_ids = np.asarray(edge_ids, dtype=np.int64)
        self.edge_target = np.asarray(edge_target, dtype=np.int64)


class _EdgeKernels:
    """All edge cost pmfs as one (offsets, probs, totals) block, by edge id."""

    __slots__ = ("network", "costs", "offsets", "probs", "totals", "min_ticks")

    def __init__(self, network, combiner) -> None:
        self.network = network
        self.costs = combiner.costs
        dists = [combiner.edge_cost(edge) for edge in network.edges]
        support = max((d.support_size for d in dists), default=1)
        count = len(dists)
        self.offsets = np.fromiter(
            (d.offset for d in dists), dtype=np.int64, count=count
        )
        self.probs = np.zeros((count, support), dtype=np.float64)
        self.totals = np.empty(count, dtype=np.float64)
        for i, dist in enumerate(dists):
            self.probs[i, : dist.support_size] = dist.probs
            self.totals[i] = float(dist.cdf()[-1])
        #: Minimum possible ticks per edge — the weight the lower-bound
        #: tables are built on.
        self.min_ticks = self.offsets + np.argmax(self.probs > 0.0, axis=1)


def _cache_get(cache: OrderedDict, key, build):
    entry = cache.get(key)
    if entry is None:
        entry = build()
        cache[key] = entry
        while len(cache) > _CACHE_SIZE:
            cache.popitem(last=False)
    else:
        cache.move_to_end(key)
    return entry


def _csr_for(network) -> _Csr:
    key = (id(network), getattr(network, "version", 0))
    return _cache_get(_CSR_CACHE, key, lambda: _Csr(network))


def _kernels_for(network, combiner) -> _EdgeKernels:
    costs = combiner.costs
    key = (
        id(network),
        getattr(network, "version", 0),
        id(costs),
        getattr(costs, "version", 0),
    )
    return _cache_get(_KERNEL_CACHE, key, lambda: _EdgeKernels(network, combiner))


def _dense_bounds(heuristic: OptimisticHeuristic, csr: _Csr) -> np.ndarray:
    """The heuristic table as a dense vector (inf = cannot reach target)."""
    cached = getattr(heuristic, "_columnar_bounds", None)
    if cached is not None and cached[0] is csr:
        return cached[1]
    bounds = np.full(csr.num_vertices, np.inf)
    index_of = csr.index_of
    for vertex, remaining in heuristic.table.items():
        i = index_of.get(vertex)
        if i is not None:
            bounds[i] = remaining
    bounds.flags.writeable = False
    heuristic._columnar_bounds = (csr, bounds)
    return bounds


class _LabelArena:
    """Parallel (vertex, parent, edge) arrays with amortised doubling."""

    __slots__ = ("vertex", "parent", "edge", "count")

    def __init__(self) -> None:
        cap = 1024
        self.vertex = np.empty(cap, dtype=np.int64)
        self.parent = np.empty(cap, dtype=np.int64)
        self.edge = np.empty(cap, dtype=np.int64)
        self.count = 0

    def append(
        self, vertices: np.ndarray, parents: np.ndarray, edges: np.ndarray
    ) -> np.ndarray:
        n = vertices.size
        need = self.count + n
        cap = self.vertex.size
        if need > cap:
            while cap < need:
                cap *= 2
            for name in ("vertex", "parent", "edge"):
                old = getattr(self, name)
                grown = np.empty(cap, dtype=np.int64)
                grown[: self.count] = old[: self.count]
                setattr(self, name, grown)
        ids = np.arange(self.count, need, dtype=np.int64)
        self.vertex[self.count : need] = vertices
        self.parent[self.count : need] = parents
        self.edge[self.count : need] = edges
        self.count = need
        return ids


class _FrontierStore:
    """Resident Pareto-frontier CDF rows for every vertex, in one matrix.

    Rows are allocated from a free list (evicted rows are reused), so live
    memory tracks the frontier size — the sum of per-vertex antichain sizes —
    rather than every label ever admitted.
    """

    __slots__ = ("matrix", "_free", "by_vertex")

    def __init__(self, width: int) -> None:
        cap = 256
        self.matrix = np.empty((cap, width), dtype=np.float64)
        self._free = list(range(cap - 1, -1, -1))
        self.by_vertex: dict[int, list[int]] = {}

    def _alloc(self) -> int:
        if not self._free:
            cap = self.matrix.shape[0]
            grown = np.empty((cap * 2, self.matrix.shape[1]), dtype=np.float64)
            grown[:cap] = self.matrix
            self.matrix = grown
            self._free = list(range(cap * 2 - 1, cap - 1, -1))
        return self._free.pop()

    def insert(self, vertex: int, row: np.ndarray) -> int:
        i = self._alloc()
        self.matrix[i] = row
        self.by_vertex.setdefault(vertex, []).append(i)
        return i

    def evict(self, vertex: int, rows: list[int]) -> None:
        live = self.by_vertex[vertex]
        for i in rows:
            live.remove(i)
            self._free.append(i)


def _admit_group(
    store: _FrontierStore, vertex: int, cand_cdf: np.ndarray, lo: int = 0
) -> np.ndarray:
    """Sequentially admit one vertex's candidates, ParetoFrontier-style.

    Replays :meth:`ParetoFrontier.add` for each candidate in order using
    precomputed pairwise dominance matrices: a candidate is rejected when a
    *live* resident (or an earlier-kept candidate still in the frontier)
    weakly dominates it, and an admitted candidate evicts every resident it
    weakly dominates.  Returns the admitted mask; an admitted-then-evicted
    candidate stays admitted (it was already queued for expansion — exactly
    the scalar core's behaviour, where eviction never reaches the heap).

    ``lo`` is a caller-supplied column such that every candidate CDF is
    exactly zero on ``[0, lo)`` (the group's earliest support tick).  The
    pairwise broadcasts then compare only ``[lo:]``: below ``lo`` any row
    trivially dominates a zero CDF, and the one direction that is *not*
    trivial — a candidate dominating a resident with earlier support — is
    restored exactly by requiring the resident's CDF at ``lo - 1`` to be
    within tolerance of zero.  Mid-search generations sit deep in the
    window, so this typically halves the dominance compare work.
    """
    resident_rows = store.by_vertex.get(vertex) or []
    count = cand_cdf.shape[0]
    num_res = len(resident_rows)
    admitted = np.zeros(count, dtype=bool)
    if count == 1:
        # Fast path for the overwhelmingly common one-candidate group: the
        # same reject/evict/insert sequence without pairwise matrices.
        row = cand_cdf[0]
        if resident_rows:
            resident = store.matrix[resident_rows]
            if (resident[:, lo:] >= row[lo:] - DOMINANCE_TOL).all(axis=1).any():
                return admitted
            dominated = (row[lo:] >= resident[:, lo:] - DOMINANCE_TOL).all(axis=1)
            if lo > 0:
                dominated &= resident[:, lo - 1] <= DOMINANCE_TOL
            if dominated.any():
                store.evict(
                    vertex,
                    [r for r, d in zip(resident_rows, dominated) if d],
                )
        store.insert(vertex, row)
        admitted[0] = True
        return admitted
    # Equal-probability path enumerations (ubiquitous on grids) make many
    # candidates bitwise-identical rows; the pairwise matrices only need the
    # distinct ones.  The replay below walks candidates in original order
    # through a uid indirection, which reproduces the sequential semantics
    # exactly: the first copy of a row decides, an admitted copy's diagonal
    # self-dominance then rejects every later copy (as the scalar frontier
    # would), and a copy of a rejected row automatically re-tests the *live*
    # state, so intervening evictions behave identically too.
    uid_of: dict[bytes, int] = {}
    inverse = np.empty(count, dtype=np.int64)
    firsts: list[int] = []
    for j in range(count):
        key = cand_cdf[j].tobytes()
        u = uid_of.get(key)
        if u is None:
            u = len(firsts)
            uid_of[key] = u
            firsts.append(j)
        inverse[j] = u
    num_uniq = len(firsts)
    uniq_cdf = cand_cdf[firsts] if num_uniq < count else cand_cdf
    # One all-pairs broadcast over [residents; unique candidates] replaces
    # three separate matrix calls — per-call numpy overhead dominates at
    # search group sizes.
    if resident_rows:
        block = np.vstack((store.matrix[resident_rows], uniq_cdf))
    else:
        block = uniq_cdf
    sliced = block[:, lo:]
    pairwise = (sliced[:, None, :] >= (sliced - DOMINANCE_TOL)[None, :, :]).all(
        axis=2
    )
    res_dominates = pairwise[:num_res, num_res:]
    cand_dominates = pairwise[num_res:, :num_res]
    if lo > 0 and num_res:
        # Below ``lo`` candidates are zero while residents may not be: a
        # candidate only dominates a resident whose early mass is ~zero too.
        cand_dominates = cand_dominates & (
            block[:num_res, lo - 1] <= DOMINANCE_TOL
        )
    cand_cross = pairwise[num_res:, num_res:]
    res_alive = np.ones(num_res, dtype=bool)
    kept_front: list[int] = []
    # Event-driven replay: per-candidate rejection tests are O(1) lookups in
    # two running "dominated by a live resident / front member" vectors,
    # updated vectorially only when the frontier actually changes (an
    # admission ORs one row in; an eviction recomputes from the survivors).
    # Exact same sequential semantics as testing against the live sets.
    res_dom_any = (
        res_dominates.any(axis=0)
        if num_res
        else np.zeros(num_uniq, dtype=bool)
    )
    front_dom_any = np.zeros(num_uniq, dtype=bool)
    for j in range(count):
        u = int(inverse[j])
        if res_dom_any[u] or front_dom_any[u]:
            continue
        if num_res:
            hits = cand_dominates[u] & res_alive
            if hits.any():
                res_alive &= ~hits
                res_dom_any = res_dominates[res_alive].any(axis=0)
        if kept_front:
            kept = ~cand_cross[u, kept_front]
            if not kept.all():
                kept_front = [i for i, k in zip(kept_front, kept) if k]
                front_dom_any = (
                    cand_cross[kept_front].any(axis=0)
                    if kept_front
                    else np.zeros(num_uniq, dtype=bool)
                )
        front_dom_any |= cand_cross[u]
        kept_front.append(u)
        admitted[j] = True
    if not res_alive.all():
        store.evict(
            vertex,
            [r for r, alive in zip(resident_rows, res_alive) if not alive],
        )
    for u in kept_front:
        store.insert(vertex, uniq_cdf[u])
    return admitted


def columnar_route(
    search,
    query: RoutingQuery,
    *,
    time_limit_seconds: float | None = None,
    heuristic: OptimisticHeuristic | None = None,
) -> RoutingResult:
    """Answer one ``route`` query with the generation-at-a-time core.

    ``search`` is the owning :class:`~repro.routing.budget._BudgetSearch`;
    dispatch (combiner capability, backend selection, window bounds) already
    happened in ``_BudgetSearch.route``.
    """
    start_time = time.perf_counter()
    stats = SearchStats()
    network = search.network
    combiner = search.combiner
    pruning = search.pruning
    budget = query.budget
    width = budget + 2

    csr = _csr_for(network)
    kernels = _kernels_for(network, combiner)
    source_i = csr.index_of[query.source]
    target_i = csr.index_of[query.target]

    if search.landmarks:
        from .landmarks import LandmarkTable

        table = LandmarkTable.shared(
            network, combiner.costs, k=search.landmarks
        )
        bounds = table.bounds_to(query.target)
    else:
        if heuristic is None:
            heuristic = OptimisticHeuristic.shared(
                network, combiner.costs, query.target
            )
        bounds = _dense_bounds(heuristic, csr)

    if not np.isfinite(bounds[source_i]):
        # Provably unreachable (exact heuristic: not settled by the reverse
        # Dijkstra; landmarks: a triangle-inequality unreachability proof).
        stats.completed = True
        stats.runtime_seconds = time.perf_counter() - start_time
        return RoutingResult(query, (), None, 0.0, stats)

    use_heuristic = pruning.use_heuristic
    use_pivot = pruning.use_pivot
    use_cost_shifting = pruning.use_cost_shifting
    use_dominance = pruning.use_dominance
    reachable = np.isfinite(bounds)
    shift = np.where(reachable, bounds, 0.0).astype(np.int64)

    deadline = (
        None if time_limit_seconds is None else start_time + time_limit_seconds
    )
    expired = False

    arena = _LabelArena()
    store = _FrontierStore(width) if use_dominance else None

    pivot_probability = -1.0
    pivot_parent = -1
    pivot_edge = -1
    pivot_row: np.ndarray | None = None
    pivot_pruned_in_gen = False

    # ------------------------------------------------------------------
    # Incumbent seeding and diving (branch and bound).  The scalar
    # best-first loop establishes a pivot within a few pops by diving
    # toward the target; a breadth-first generation sweep would otherwise
    # run pivot-less until the target's generation, admitting every detour
    # along the way.  With the exact per-target heuristic the descent
    # successor of any vertex — an out-edge on a min-tick shortest-path
    # tree, ``h(v) == min_ticks(e) + h(w)`` (exact: tick weights are
    # integers, integer-sum float64 arithmetic is exact) — can be read
    # straight off the bound table, so:
    #
    # * the *seed* incumbent is the source's full descent path, a real
    #   optimistically-fastest route, screened against from generation 1;
    # * once per generation the best-bound label is *dived*: completed to
    #   the target along the descent and scored exactly via a dot product
    #   with the memoised suffix tail, raising the incumbent toward the
    #   optimum long before any arrival.
    #
    # Both are sound — the screen only ever discards labels that provably
    # cannot beat a real simple path (dives are rejected if the descent
    # revisits the label's prefix) — and when no arrival strictly beats
    # the incumbent, the result construction below returns the dive path
    # itself: the scalar core's answer, up to equal-probability ties.
    # ------------------------------------------------------------------
    dive_exact = not search.landmarks
    min_ticks = kernels.min_ticks
    target_row = np.zeros(width)
    target_row[0] = 1.0
    #: v -> window pmf row of the descent-suffix cost v -> target, or None
    #: when the descent stalls (zero-tick cycle / no qualifying edge).
    suffix_rows: dict[int, np.ndarray | None] = {target_i: target_row}
    #: v -> (edge id, next vertex) along the descent; filled with rows.
    suffix_next: dict[int, tuple[int, int]] = {}
    #: v -> tail vector T with T[t] = P(suffix <= budget - t), or None.
    suffix_tails: dict[int, np.ndarray | None] = {}
    pivot_dive_parent = -1
    pivot_dive_vertex = -1

    def suffix_row_for(v: int) -> np.ndarray | None:
        """Window pmf of the descent suffix from ``v``, memoised."""
        chain: list[tuple[int, int, int]] = []
        u = v
        while u not in suffix_rows:
            hu = bounds[u]
            nxt = -1
            for k in range(int(csr.indptr[u]), int(csr.indptr[u + 1])):
                e = int(csr.edge_ids[k])
                w = int(csr.edge_target[k])
                if bounds[w] + min_ticks[e] == hu:
                    nxt = k
                    break
            if nxt < 0 or len(chain) > csr.num_vertices:
                suffix_rows[u] = None
                break
            e = int(csr.edge_ids[nxt])
            w = int(csr.edge_target[nxt])
            chain.append((u, e, w))
            u = w
        # Resolve the chain bottom-up: each vertex's suffix is its descent
        # edge's kernel convolved with the successor's suffix row.
        for u, e, w in reversed(chain):
            succ = suffix_rows[w]
            if succ is None:
                suffix_rows[u] = None
                continue
            row = batched_window_convolve(
                succ[None, :],
                kernels.offsets[e : e + 1],
                kernels.probs[e : e + 1],
                kernels.totals[e : e + 1],
            )
            trim_window_rows(row)
            suffix_rows[u] = row[0]
            suffix_next[u] = (e, w)
        return suffix_rows.get(v)

    def tail_for(v: int) -> np.ndarray | None:
        """T[t] = P(descent suffix from ``v`` <= budget - t), memoised."""
        tail = suffix_tails.get(v, False)
        if tail is not False:
            return tail
        row = suffix_row_for(v)
        if row is None:
            suffix_tails[v] = None
            return None
        head_cdf = np.cumsum(row[: width - 1])
        tail = np.zeros(width)
        tail[: budget + 1] = head_cdf[budget::-1]
        suffix_tails[v] = tail
        return tail

    def dive_is_simple(label_id: int, v: int) -> bool:
        """Does the descent from ``v`` avoid the label's prefix vertices?"""
        prefix = {source_i}
        cursor = label_id
        while cursor >= 0:
            prefix.add(int(arena.vertex[cursor]))
            cursor = int(arena.parent[cursor])
        u = v
        while u != target_i:
            nxt = suffix_next.get(u)
            if nxt is None:
                return False
            u = nxt[1]
            if u in prefix:
                return False
        return True

    if dive_exact and source_i != target_i:
        tail = tail_for(source_i)
        if tail is not None:
            # Seed: P(full descent path <= budget) — tail at zero elapsed.
            pivot_probability = float(tail[0])
            pivot_dive_parent = -1
            pivot_dive_vertex = source_i

    def process_candidates(
        rows: np.ndarray,
        vertices: np.ndarray,
        parents: np.ndarray,
        edges: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Screen one candidate block; returns admitted (rows, vertices,
        ids, bounds).

        Mirrors the scalar ``consider`` pruning order — unreachable, bound,
        pivot, dominance — with target arrivals folded into the pivot before
        interior labels are screened against it.
        """
        nonlocal pivot_probability, pivot_parent, pivot_edge, pivot_row
        nonlocal pivot_pruned_in_gen, pivot_dive_parent, pivot_dive_vertex
        n = rows.shape[0]
        stats.labels_generated += n
        cdf = np.cumsum(rows, axis=1)
        alive = np.ones(n, dtype=bool)
        if use_heuristic:
            unreachable = ~reachable[vertices]
            stats.pruned_unreachable += int(unreachable.sum())
            alive &= ~unreachable
            if use_cost_shifting:
                bound_col = budget - shift[vertices]
            else:
                bound_col = np.full(n, budget, dtype=np.int64)
        else:
            bound_col = np.full(n, budget, dtype=np.int64)
        bound = np.zeros(n, dtype=np.float64)
        in_window = alive & (bound_col >= 0)
        idx = np.flatnonzero(in_window)
        bound[idx] = cdf[idx, bound_col[idx]]
        fails = alive & (bound <= 0.0)
        stats.pruned_by_bound += int(fails.sum())
        alive &= ~fails
        # Target arrivals: fold into the pivot (descending probability, so
        # pivot_updates counts strict improvements like the scalar pops do),
        # then screen the generation's interior labels against the raised
        # pivot — sound, and at least as much pruning as the scalar order.
        at_target = vertices == target_i
        arrivals = np.flatnonzero(alive & at_target)
        if arrivals.size:
            probs = cdf[arrivals, budget]
            for j in arrivals[np.argsort(-probs, kind="stable")]:
                p = float(cdf[j, budget])
                if p > pivot_probability:
                    pivot_probability = p
                    pivot_parent = int(parents[j])
                    pivot_edge = int(edges[j])
                    pivot_row = rows[j].copy()
                    pivot_dive_parent = -1
                    pivot_dive_vertex = -1
                    stats.pivot_updates += 1
                elif use_pivot:
                    stats.pruned_by_bound += 1
            alive &= ~at_target
        if use_pivot:
            fails = alive & (bound <= pivot_probability)
            pruned = int(fails.sum())
            if pruned:
                stats.pruned_by_bound += pruned
                pivot_pruned_in_gen = True
                alive &= ~fails
        if use_dominance and alive.any():
            idx = np.flatnonzero(alive)
            group_order = np.argsort(vertices[idx], kind="stable")
            ordered = idx[group_order]
            ordered_vertices = vertices[ordered]
            # Column where each row's support starts: dominance compares can
            # skip the all-zero CDF prefix shared by a group (see
            # _admit_group's ``lo``).
            first_nz = np.argmax(rows > 0.0, axis=1)
            cut = np.flatnonzero(
                np.diff(ordered_vertices, prepend=ordered_vertices[0] - 1)
            )
            for g, start in enumerate(cut):
                end = cut[g + 1] if g + 1 < cut.size else ordered.size
                members = ordered[start:end]
                kept = _admit_group(
                    store,
                    int(ordered_vertices[start]),
                    cdf[members],
                    int(first_nz[members].min()),
                )
                rejected = members[~kept]
                stats.pruned_by_dominance += int(rejected.size)
                alive[rejected] = False
        sel = np.flatnonzero(alive)
        ids = arena.append(vertices[sel], parents[sel], edges[sel])
        return rows[sel], vertices[sel], ids, bound[sel]

    # ------------------------------------------------------------------
    # Seed generation: the source's out-edges.
    # ------------------------------------------------------------------
    s0, s1 = int(csr.indptr[source_i]), int(csr.indptr[source_i + 1])
    seed_edges = csr.edge_ids[s0:s1]
    seed_vertices = csr.edge_target[s0:s1]
    if seed_edges.size:
        seed_rows = np.stack(
            [
                combiner.edge_cost(network.edge(int(e))).window_row(width)
                for e in seed_edges
            ]
        )
        trim_window_rows(seed_rows)
        gen_rows, gen_vertices, gen_ids, gen_bounds = process_candidates(
            seed_rows,
            seed_vertices,
            np.full(seed_edges.size, -1, dtype=np.int64),
            seed_edges,
        )
    else:
        gen_rows = np.zeros((0, width))
        gen_vertices = np.zeros(0, dtype=np.int64)
        gen_ids = np.zeros(0, dtype=np.int64)
        gen_bounds = np.zeros(0)

    chunk_rows = max(256, _CHUNK_BYTES // (width * 8))
    indptr = csr.indptr

    # ------------------------------------------------------------------
    # Generation loop.
    # ------------------------------------------------------------------
    while gen_ids.size:
        if deadline is not None and time.perf_counter() > deadline:
            expired = True
            break
        if dive_exact and use_pivot:
            # Dive: complete the generation's best-bound label to the target
            # along the min-tick descent and score the resulting real path
            # exactly (dot of the label row against the memoised suffix
            # tail).  A successful dive raises the incumbent, which then
            # re-screens this very generation before its expensive
            # expansion — the columnar analogue of the scalar core's
            # best-first pivot chase.
            num_dives = min(_DIVES_PER_GENERATION, int(gen_bounds.size))
            top = np.argpartition(gen_bounds, -num_dives)[-num_dives:]
            for j in top[np.argsort(-gen_bounds[top], kind="stable")]:
                if gen_bounds[j] <= pivot_probability:
                    break
                v = int(gen_vertices[j])
                tail = tail_for(v)
                if tail is None:
                    continue
                p = float(np.dot(gen_rows[j], tail))
                if p > pivot_probability and dive_is_simple(
                    int(gen_ids[j]), v
                ):
                    pivot_probability = p
                    pivot_dive_parent = int(gen_ids[j])
                    pivot_dive_vertex = v
                    pivot_row = None
                    stats.pivot_updates += 1
            keep = gen_bounds > pivot_probability
            if not keep.all():
                stats.pruned_by_bound += int((~keep).sum())
                gen_rows = gen_rows[keep]
                gen_vertices = gen_vertices[keep]
                gen_ids = gen_ids[keep]
                gen_bounds = gen_bounds[keep]
                if not gen_ids.size:
                    # The raised incumbent emptied the frontier: provably
                    # done, matching the scalar best-first early exit.
                    stats.bound_terminations += 1
                    break
        pivot_pruned_in_gen = False
        stats.labels_expanded += int(gen_ids.size)
        starts = indptr[gen_vertices]
        counts = indptr[gen_vertices + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        parent_pos = np.repeat(
            np.arange(gen_vertices.size, dtype=np.int64), counts
        )
        run_starts = np.cumsum(counts) - counts
        edge_pos = (
            np.repeat(starts, counts)
            + np.arange(total, dtype=np.int64)
            - np.repeat(run_starts, counts)
        )
        child_edges = csr.edge_ids[edge_pos]
        child_vertices = csr.edge_target[edge_pos]

        next_rows: list[np.ndarray] = []
        next_vertices: list[np.ndarray] = []
        next_ids: list[np.ndarray] = []
        next_bounds: list[np.ndarray] = []
        for lo in range(0, total, chunk_rows):
            if deadline is not None and time.perf_counter() > deadline:
                expired = True
                break
            hi = min(lo + chunk_rows, total)
            c_vertices = child_vertices[lo:hi]
            c_edges = child_edges[lo:hi]
            c_parent_pos = parent_pos[lo:hi]
            c_parent_ids = gen_ids[c_parent_pos]
            # Simple-path constraint: lockstep walk up the parent chains.
            conflict = c_vertices == source_i
            cursor = c_parent_ids.copy()
            while True:
                active = np.flatnonzero((cursor >= 0) & ~conflict)
                if active.size == 0:
                    break
                at = cursor[active]
                conflict[active] |= arena.vertex[at] == c_vertices[active]
                cursor[active] = arena.parent[at]
            keep = np.flatnonzero(~conflict)
            if keep.size == 0:
                continue
            parent_rows = gen_rows[c_parent_pos[keep]]
            kept_edges = c_edges[keep]
            child_block = batched_window_convolve(
                parent_rows,
                kernels.offsets[kept_edges],
                kernels.probs[kept_edges],
                kernels.totals[kept_edges],
            )
            trim_window_rows(child_block)
            admitted = process_candidates(
                child_block,
                c_vertices[keep],
                c_parent_ids[keep],
                kept_edges,
            )
            if admitted[2].size:
                next_rows.append(admitted[0])
                next_vertices.append(admitted[1])
                next_ids.append(admitted[2])
                next_bounds.append(admitted[3])
        if expired:
            break
        if next_ids:
            gen_rows = np.concatenate(next_rows)
            gen_vertices = np.concatenate(next_vertices)
            gen_ids = np.concatenate(next_ids)
            gen_bounds = np.concatenate(next_bounds)
        else:
            if use_pivot and pivot_pruned_in_gen:
                # The pivot screen emptied the remaining frontier: the search
                # is provably done, matching the scalar best-first exit.
                stats.bound_terminations += 1
            gen_ids = np.zeros(0, dtype=np.int64)

    if expired:
        stats.completed = False
    stats.runtime_seconds = time.perf_counter() - start_time

    if pivot_row is None:
        if pivot_dive_vertex >= 0:
            # No arrival strictly beat the dive incumbent: the dive path —
            # the label's prefix chain continued by the min-tick descent —
            # is the answer.  Its window row is recomputed edge by edge so
            # the returned distribution reproduces the reported probability
            # exactly (the screening value was the mathematically equal dot
            # product against the suffix tail).
            edges_reversed = []
            cursor = pivot_dive_parent
            while cursor >= 0:
                edges_reversed.append(int(arena.edge[cursor]))
                cursor = int(arena.parent[cursor])
            edge_ids = list(reversed(edges_reversed))
            v = pivot_dive_vertex
            while v != target_i:
                e, v = suffix_next[v]
                edge_ids.append(e)
            row = np.zeros((1, width))
            row[0, 0] = 1.0
            for e in edge_ids:
                row = batched_window_convolve(
                    row,
                    kernels.offsets[e : e + 1],
                    kernels.probs[e : e + 1],
                    kernels.totals[e : e + 1],
                )
                trim_window_rows(row)
            path = tuple(network.edge(int(e)) for e in edge_ids)
            distribution = DiscreteDistribution(0, row[0], normalize=False)
            return RoutingResult(
                query,
                path,
                distribution,
                float(row[0, : budget + 1].sum()),
                stats,
            )
        fallback = search._fallback_route(query.source, query.target)
        if fallback is None:
            return RoutingResult(query, (), None, 0.0, stats)
        path, dist = fallback
        return RoutingResult(
            query, path, dist, dist.prob_within(budget), stats
        )
    edges_reversed = [pivot_edge]
    cursor = pivot_parent
    while cursor >= 0:
        edges_reversed.append(int(arena.edge[cursor]))
        cursor = int(arena.parent[cursor])
    path = tuple(network.edge(e) for e in reversed(edges_reversed))
    distribution = DiscreteDistribution(0, pivot_row, normalize=False)
    return RoutingResult(query, path, distribution, pivot_probability, stats)
