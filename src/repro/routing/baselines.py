"""Baseline routing algorithms.

* :func:`expected_time_path` — the introduction's strawman: deterministic
  shortest path over *average* travel times (the policy that picks P2 and
  risks missing the flight).
* :func:`exhaustive_best_path` — brute-force enumeration of all simple paths,
  the optimality oracle the PBR correctness tests compare against (small
  graphs only).
"""

from __future__ import annotations

from ..core.models import CostCombiner
from ..core.path_cost import PathCostComputer
from ..network import Edge, RoadNetwork
from ..network.paths import dijkstra, reconstruct_path
from .query import RoutingQuery, RoutingResult, SearchStats

__all__ = ["expected_time_path", "exhaustive_best_path", "all_simple_paths"]


def expected_time_path(
    network: RoadNetwork, combiner: CostCombiner, query: RoutingQuery
) -> RoutingResult:
    """Shortest path by expected travel time, evaluated under the combiner.

    This is "routing on averages": it ignores spread entirely, so on
    risk-sensitive queries it returns paths with lower mean but worse
    on-time probability.
    """
    dist_map, parent = dijkstra(
        network,
        query.source,
        weight=lambda edge: combiner.edge_cost(edge).mean(),
        targets={query.target},
    )
    stats = SearchStats()
    if query.target not in dist_map:
        return RoutingResult(query, (), None, 0.0, stats)
    path = tuple(reconstruct_path(parent, query.source, query.target))
    distribution = PathCostComputer(combiner).cost(path)
    return RoutingResult(
        query, path, distribution, distribution.prob_within(query.budget), stats
    )


def all_simple_paths(
    network: RoadNetwork,
    source: int,
    target: int,
    *,
    max_edges: int = 12,
    max_paths: int = 100_000,
) -> list[list[Edge]]:
    """Every simple edge path from ``source`` to ``target`` (DFS).

    Guard rails: paths longer than ``max_edges`` are cut off, and exceeding
    ``max_paths`` raises — this helper exists for oracle tests on small
    graphs, not for production routing.
    """
    paths: list[list[Edge]] = []
    stack: list[Edge] = []
    visited = {source}

    def dfs(vertex: int) -> None:
        if len(paths) > max_paths:
            raise RuntimeError(f"more than {max_paths} simple paths; graph too large")
        if vertex == target:
            paths.append(list(stack))
            return
        if len(stack) >= max_edges:
            return
        for edge in network.out_edges(vertex):
            if edge.target in visited:
                continue
            visited.add(edge.target)
            stack.append(edge)
            dfs(edge.target)
            stack.pop()
            visited.discard(edge.target)

    dfs(source)
    return paths


def exhaustive_best_path(
    network: RoadNetwork,
    combiner: CostCombiner,
    query: RoutingQuery,
    *,
    max_edges: int = 12,
) -> RoutingResult:
    """Oracle: evaluate every simple path and return the most probable one.

    Ties on probability are broken towards fewer edges, then lexicographic
    edge ids, so results are deterministic and comparable across runs.
    """
    computer = PathCostComputer(combiner)
    best_path: list[Edge] | None = None
    best_probability = -1.0
    best_distribution = None
    paths = all_simple_paths(network, query.source, query.target, max_edges=max_edges)
    stats = SearchStats(labels_generated=len(paths))
    for path in sorted(paths, key=lambda p: (len(p), [e.id for e in p])):
        distribution = computer.cost(path)
        probability = distribution.prob_within(query.budget)
        if probability > best_probability + 1e-12:
            best_path = path
            best_probability = probability
            best_distribution = distribution
    if best_path is None:
        return RoutingResult(query, (), None, 0.0, stats)
    return RoutingResult(
        query, tuple(best_path), best_distribution, best_probability, stats
    )
