"""ALT landmark lower bounds for the columnar search core.

The per-target :class:`~repro.routing.heuristics.OptimisticHeuristic` is an
exact lower bound, but each new destination pays a full reverse Dijkstra.
A :class:`LandmarkTable` instead precomputes forward and reverse shortest
distances (over minimum possible edge ticks) for ``k`` landmark vertices
**once per cost-table version**, after which the triangle inequality yields
an admissible lower bound on ``dist(v, t)`` for *any* target ``t`` with no
per-target graph search at all::

    dist(v, t) >= dist(v, L) - dist(t, L)      (landmark behind the target)
    dist(v, t) >= dist(L, t) - dist(L, v)      (landmark behind the source)

Both right-hand sides are maximised over the ``k`` landmarks and clamped at
zero.  The bounds are weaker than the exact heuristic (so the search prunes
less) but every pruning that uses them stays sound, and the answer is
unchanged.  Infinite bounds are genuine unreachability proofs: if ``t``
reaches ``L`` but ``v`` does not, then ``v`` cannot reach ``t``.

Landmarks are selected by deterministic farthest-point traversal seeded at
the smallest vertex id (ties broken towards smaller ids), so two processes
building the table for one network agree exactly.  Tables are shared through
the same versioned LRU as the optimistic heuristic
(:func:`~repro.routing.heuristics.shared_versioned`) under the slot
``("landmarks", k)``.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..core.costs import EdgeCostTable
from ..network import RoadNetwork
from ..network.paths import dijkstra, reverse_dijkstra
from .heuristics import shared_versioned

__all__ = ["LandmarkTable", "DEFAULT_NUM_LANDMARKS"]

#: Default number of landmarks when a search enables ALT mode without a
#: count.  Memory is ``2 * k * num_vertices`` float64 cells.
DEFAULT_NUM_LANDMARKS = 8

#: Per-table cap on memoised per-target bound vectors.
_BOUNDS_CACHE_SIZE = 64


class LandmarkTable:
    """Forward/reverse landmark distances over minimum edge ticks."""

    def __init__(
        self, network: RoadNetwork, costs: EdgeCostTable, *, k: int = DEFAULT_NUM_LANDMARKS
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.network = network
        self.costs = costs
        order = sorted(network.vertex_ids())
        if not order:
            raise ValueError("network has no vertices")
        self.vertex_order = order
        self.index_of = {v: i for i, v in enumerate(order)}
        num = len(order)
        k = min(k, num)

        def weight(edge):
            return float(costs.min_ticks(edge))

        def forward_row(vertex: int) -> np.ndarray:
            dist, _ = dijkstra(network, vertex, weight=weight)
            row = np.full(num, np.inf)
            for v, d in dist.items():
                row[self.index_of[v]] = d
            return row

        def reverse_row(vertex: int) -> np.ndarray:
            dist = reverse_dijkstra(network, vertex, weight=weight)
            row = np.full(num, np.inf)
            for v, d in dist.items():
                row[self.index_of[v]] = d
            return row

        # Farthest-point selection: seed a probe Dijkstra at the smallest
        # vertex id, take the farthest finite vertex as the first landmark,
        # then repeatedly add the vertex maximising the minimum distance from
        # the chosen set.  Unreachable vertices score -1 so disconnected
        # dust never wins over a genuinely far reachable vertex; exact ties
        # resolve to the smallest vertex id (np.argmax takes the first, and
        # ``order`` is ascending).
        probe = forward_row(order[0])
        score = np.where(np.isfinite(probe), probe, -1.0)
        chosen: list[int] = [order[int(np.argmax(score))]]
        rows_from = [forward_row(chosen[0])]
        min_score = np.where(np.isfinite(rows_from[0]), rows_from[0], -1.0)
        while len(chosen) < k:
            min_score[[self.index_of[v] for v in chosen]] = -np.inf
            best = int(np.argmax(min_score))
            if not min_score[best] > 0.0:
                # Every remaining vertex is already a landmark, unreachable,
                # or at distance zero — more landmarks add no information.
                break
            vertex = order[best]
            chosen.append(vertex)
            row = forward_row(vertex)
            rows_from.append(row)
            np.minimum(
                min_score, np.where(np.isfinite(row), row, -1.0), out=min_score
            )
        self.landmarks = tuple(chosen)
        #: ``dist_from[l, i]``: minimum ticks landmark ``l`` -> vertex ``i``.
        self.dist_from = np.vstack(rows_from)
        #: ``dist_to[l, i]``: minimum ticks vertex ``i`` -> landmark ``l``.
        self.dist_to = np.vstack([reverse_row(v) for v in chosen])
        self._bounds_cache: "OrderedDict[int, np.ndarray]" = OrderedDict()

    @classmethod
    def shared(
        cls, network: RoadNetwork, costs: EdgeCostTable, *, k: int = DEFAULT_NUM_LANDMARKS
    ) -> "LandmarkTable":
        """A cached table for ``(network, costs, k)``.

        Shares the optimistic heuristic's process-wide versioned LRU (slot
        ``("landmarks", k)``), so cost-table hot-swaps invalidate landmark
        tables through the same mechanism as per-target heuristics.
        """
        return shared_versioned(
            network,
            costs,
            ("landmarks", k),
            lambda: cls(network, costs, k=k),
        )

    def bounds_to(self, target: int) -> np.ndarray:
        """Admissible lower bounds (ticks) from every vertex to ``target``.

        Returns a dense float64 vector indexed like ``vertex_order``;
        ``np.inf`` entries are *proofs* that the vertex cannot reach the
        target.  Vectors are memoised per target (bounded LRU) — repeated
        queries to one destination pay the triangle-inequality pass once.
        """
        cached = self._bounds_cache.get(target)
        if cached is not None:
            self._bounds_cache.move_to_end(target)
            return cached
        ti = self.index_of[target]
        to_target = self.dist_to[:, ti : ti + 1]  # dist(t, L), (k, 1)
        from_target = self.dist_from[:, ti : ti + 1]  # dist(L, t), (k, 1)
        # dist(v, t) >= dist(v, L) - dist(t, L); a landmark the target cannot
        # reach says nothing through this form.  When it holds, an infinite
        # dist(v, L) is a real proof: v -> t -> L would otherwise exist.
        with np.errstate(invalid="ignore"):  # masked inf - inf cells
            behind_target = np.where(
                np.isfinite(to_target), self.dist_to - to_target, -np.inf
            )
            # dist(v, t) >= dist(L, t) - dist(L, v); a landmark that cannot
            # reach v says nothing, while dist(L, t) = inf with finite
            # dist(L, v) proves v cannot reach t (else L -> v -> t).
            behind_source = np.where(
                np.isfinite(self.dist_from), from_target - self.dist_from, -np.inf
            )
        bounds = np.maximum(
            behind_target.max(axis=0), behind_source.max(axis=0)
        )
        np.maximum(bounds, 0.0, out=bounds)
        bounds.flags.writeable = False
        self._bounds_cache[target] = bounds
        while len(self._bounds_cache) > _BOUNDS_CACHE_SIZE:
            self._bounds_cache.popitem(last=False)
        return bounds
