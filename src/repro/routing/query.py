"""Routing query/result value types and search statistics.

Everything a routing service exchanges with callers lives here: the
immutable :class:`RoutingQuery` (with explicit seconds-to-ticks conversion
through :meth:`RoutingQuery.from_seconds`), the :class:`SearchStats`
observability counters, and the answer types — :class:`RoutingResult` for
one query, :class:`MultiBudgetResult` for one source/target pair answered
over a whole budget vector, and :class:`KBestResult` for the top-k
non-dominated routes.  All are JSON-serialisable via ``to_dict`` /
``from_dict`` (each payload carries a ``kind`` tag;
:func:`result_from_dict` dispatches on it) so
:class:`~repro.routing.engine.RoutingEngine` responses are wire-ready.
"""

from __future__ import annotations

import math
import numbers
from dataclasses import dataclass, field, fields
from typing import Any, Iterable, Iterator, Mapping

from ..histograms import DiscreteDistribution
from ..network import Edge, RoadNetwork

__all__ = [
    "MAX_BUDGET_TICKS",
    "RoutingQuery",
    "SearchStats",
    "RoutingResult",
    "MultiBudgetResult",
    "KBestResult",
    "normalize_budgets",
    "result_from_dict",
]

#: Upper bound on a query budget in grid ticks.  Distribution CDF reads clamp
#: to probability 1 beyond the support, so a budget of, say, ``3.6e9`` (a
#: caller passing epoch seconds or milliseconds by mistake) would silently
#: answer "certain arrival" for every path.  Budgets beyond this bound are a
#: unit error, not a routing problem, and are rejected at construction.
MAX_BUDGET_TICKS = 10**9


def _as_grid_int(value: Any, name: str) -> int:
    """Validate one query field as a plain grid integer.

    Rejects bools (``True`` is an ``int`` subtype) and non-integral values —
    a float budget is almost always a seconds value that belongs in
    :meth:`RoutingQuery.from_seconds` instead of silently truncating.
    """
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        message = f"{name} must be an integer, got {value!r}"
        if name == "budget":
            message += (
                "; budgets in seconds go through "
                "RoutingQuery.from_seconds(..., resolution=...)"
            )
        raise TypeError(message)
    return int(value)


@dataclass(frozen=True)
class RoutingQuery:
    """Probabilistic budget routing query.

    Find the path from ``source`` to ``target`` maximising
    ``P(travel time <= budget)``; ``budget`` is in distribution grid ticks.
    """

    source: int
    target: int
    budget: int

    def __post_init__(self) -> None:
        # Normalise (e.g. numpy integers) to plain ints so queries hash,
        # compare and serialise uniformly.
        object.__setattr__(self, "source", _as_grid_int(self.source, "source"))
        object.__setattr__(self, "target", _as_grid_int(self.target, "target"))
        object.__setattr__(self, "budget", _as_grid_int(self.budget, "budget"))
        if self.source == self.target:
            raise ValueError("source and target must differ")
        if self.budget < 1:
            raise ValueError("budget must be >= 1 tick")
        if self.budget > MAX_BUDGET_TICKS:
            raise ValueError(
                f"budget of {self.budget} ticks exceeds the distribution grid "
                f"bound ({MAX_BUDGET_TICKS}); CDF reads would clamp to 1.0. "
                "Was a seconds/milliseconds value passed where ticks were "
                "expected?  Use RoutingQuery.from_seconds for unit-aware "
                "construction."
            )

    @classmethod
    def from_seconds(
        cls,
        source: int,
        target: int,
        budget_seconds: float,
        *,
        resolution: float,
    ) -> "RoutingQuery":
        """Build a query from a wall-clock budget in seconds.

        ``resolution`` is the distribution grid's tick size in seconds (the
        :class:`~repro.core.costs.EdgeCostTable` resolution).  The budget is
        floored onto the grid — ``P(cost <= budget)`` must never credit time
        beyond the stated deadline — and sub-tick budgets are rejected
        rather than rounded up to a full tick the caller never granted.
        """
        if not (isinstance(resolution, numbers.Real) and math.isfinite(resolution)):
            raise ValueError(f"resolution must be a finite number, got {resolution!r}")
        if resolution <= 0:
            raise ValueError("resolution must be positive seconds per tick")
        if not (
            isinstance(budget_seconds, numbers.Real) and math.isfinite(budget_seconds)
        ):
            raise ValueError(
                f"budget_seconds must be a finite number, got {budget_seconds!r}"
            )
        if budget_seconds <= 0:
            raise ValueError("budget_seconds must be positive")
        # The 1e-9 relative slack absorbs float division noise so exact
        # multiples of the resolution land on their own tick.
        ticks = int(math.floor(budget_seconds / float(resolution) * (1 + 1e-9)))
        if ticks < 1:
            raise ValueError(
                f"budget of {budget_seconds} s is below one grid tick "
                f"({resolution} s); the query cannot be represented on the "
                "distribution grid"
            )
        return cls(source, target, ticks)

    def budget_seconds(self, resolution: float) -> float:
        """The tick budget expressed in seconds at ``resolution`` s/tick."""
        if resolution <= 0:
            raise ValueError("resolution must be positive seconds per tick")
        return self.budget * float(resolution)

    def to_dict(self) -> dict[str, int]:
        """JSON-ready representation (exact :meth:`from_dict` round-trip)."""
        return {"source": self.source, "target": self.target, "budget": self.budget}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RoutingQuery":
        return cls(
            source=data["source"], target=data["target"], budget=data["budget"]
        )


def normalize_budgets(budgets: Iterable[Any]) -> tuple[int, ...]:
    """Validate a budget vector into an ascending, de-duplicated tick tuple.

    Every member passes the same integer/grid validation as
    :attr:`RoutingQuery.budget`; duplicates are collapsed because a
    multi-budget search answers each distinct budget exactly once.
    """
    values = [_as_grid_int(value, "budget") for value in budgets]
    if not values:
        raise ValueError("budgets must contain at least one tick budget")
    for value in values:
        if value < 1:
            raise ValueError("every budget must be >= 1 tick")
        if value > MAX_BUDGET_TICKS:
            raise ValueError(
                f"budget of {value} ticks exceeds the distribution grid bound "
                f"({MAX_BUDGET_TICKS}); see RoutingQuery.from_seconds for "
                "unit-aware construction"
            )
    return tuple(sorted(set(values)))


@dataclass
class SearchStats:
    """Observability counters for one PBR search (or one aggregated batch).

    ``pruned_by_bound`` counts individual labels rejected by the bound/pivot
    prunings; ``bound_terminations`` counts whole-search early exits (the
    best-first queue head could no longer beat the pivot, so the search is
    provably done).  The two are kept apart because they aggregate
    differently: summed across a batch, per-label prunes measure pruning
    *rates*, while terminations count at most one per member search.
    """

    labels_generated: int = 0
    labels_expanded: int = 0
    pruned_by_bound: int = 0
    pruned_by_dominance: int = 0
    pruned_unreachable: int = 0
    pivot_updates: int = 0
    bound_terminations: int = 0
    runtime_seconds: float = 0.0
    completed: bool = True

    @property
    def pruned_total(self) -> int:
        return self.pruned_by_bound + self.pruned_by_dominance + self.pruned_unreachable

    @classmethod
    def aggregate(cls, stats: Iterable["SearchStats"]) -> "SearchStats":
        """Sum counters/runtimes across searches (batch observability).

        ``completed`` is the conjunction: a batch only counts as complete
        when every member search ran to completion.  An empty iterable
        aggregates to zeroed counters with ``completed=True``.
        """
        total = cls()
        for item in stats:
            total.labels_generated += item.labels_generated
            total.labels_expanded += item.labels_expanded
            total.pruned_by_bound += item.pruned_by_bound
            total.pruned_by_dominance += item.pruned_by_dominance
            total.pruned_unreachable += item.pruned_unreachable
            total.pivot_updates += item.pivot_updates
            total.bound_terminations += item.bound_terminations
            total.runtime_seconds += item.runtime_seconds
            total.completed = total.completed and item.completed
        return total

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (exact :meth:`from_dict` round-trip)."""
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        data["pruned_total"] = self.pruned_total
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SearchStats":
        return cls(**{f.name: data[f.name] for f in fields(cls) if f.name in data})


@dataclass(frozen=True)
class RoutingResult:
    """Answer to one query.

    ``probability`` is the model's (combiner's) ``P(cost <= budget)`` for the
    returned path — the quantity PBR maximises.  ``path`` is empty only when
    the target is unreachable.
    """

    query: RoutingQuery
    path: tuple[Edge, ...]
    distribution: DiscreteDistribution | None
    probability: float
    stats: SearchStats = field(default_factory=SearchStats)

    @property
    def found(self) -> bool:
        return len(self.path) > 0

    @property
    def num_edges(self) -> int:
        return len(self.path)

    def path_vertices(self) -> list[int]:
        """Vertex sequence of the returned path."""
        if not self.path:
            return []
        return [self.path[0].source, *(edge.target for edge in self.path)]

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation.

        Edges serialise as ids (the network is shared context, not payload);
        :meth:`from_dict` resolves them back against a network.  The cost
        distribution serialises as ``{offset, probs}``.
        """
        return {
            "kind": "route",
            "query": self.query.to_dict(),
            "path": [edge.id for edge in self.path],
            "path_vertices": self.path_vertices(),
            "distribution": (
                None
                if self.distribution is None
                else {
                    "offset": self.distribution.offset,
                    "probs": [float(p) for p in self.distribution.probs],
                }
            ),
            "probability": float(self.probability),
            "found": self.found,
            "stats": self.stats.to_dict(),
        }

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], network: RoadNetwork
    ) -> "RoutingResult":
        """Rebuild a result against ``network`` (edge ids -> edges)."""
        dist_data = data.get("distribution")
        distribution = (
            None
            if dist_data is None
            else DiscreteDistribution(
                dist_data["offset"], dist_data["probs"], normalize=False
            )
        )
        return cls(
            query=RoutingQuery.from_dict(data["query"]),
            path=tuple(network.edge(edge_id) for edge_id in data["path"]),
            distribution=distribution,
            probability=float(data["probability"]),
            stats=SearchStats.from_dict(data.get("stats", {})),
        )


@dataclass(frozen=True)
class MultiBudgetResult:
    """One source/target pair answered for a whole budget vector.

    A single label search produces every entry: ``results[i]`` is the best
    route for ``budgets[i]`` (its member query carries that budget), and the
    Pareto frontier work is shared across the vector instead of re-run per
    budget.  ``stats`` describes the one shared search; member results carry
    empty per-route stats.
    """

    query: RoutingQuery
    budgets: tuple[int, ...]
    results: tuple[RoutingResult, ...]
    stats: SearchStats = field(default_factory=SearchStats)

    def __post_init__(self) -> None:
        if len(self.budgets) != len(self.results):
            raise ValueError("budgets and results must align one-to-one")
        if any(b <= a for a, b in zip(self.budgets, self.budgets[1:])):
            raise ValueError("budgets must be strictly ascending")

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[RoutingResult]:
        return iter(self.results)

    @property
    def found(self) -> bool:
        """True when at least one budget has a route."""
        return any(result.found for result in self.results)

    @property
    def probabilities(self) -> tuple[float, ...]:
        """Per-budget arrival probabilities, aligned with ``budgets``."""
        return tuple(result.probability for result in self.results)

    def items(self) -> Iterator[tuple[int, RoutingResult]]:
        """``(budget, result)`` pairs in ascending budget order."""
        return zip(self.budgets, self.results)

    def best_for(self, budget: int) -> RoutingResult:
        """The answer for one exact member budget (KeyError otherwise)."""
        for b, result in zip(self.budgets, self.results):
            if b == budget:
                return result
        raise KeyError(f"budget {budget} is not part of this result's vector")

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (see :func:`result_from_dict`)."""
        return {
            "kind": "multi_budget",
            "query": self.query.to_dict(),
            "budgets": list(self.budgets),
            "results": [result.to_dict() for result in self.results],
            "stats": self.stats.to_dict(),
        }

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], network: RoadNetwork
    ) -> "MultiBudgetResult":
        return cls(
            query=RoutingQuery.from_dict(data["query"]),
            budgets=tuple(int(b) for b in data["budgets"]),
            results=tuple(
                RoutingResult.from_dict(item, network) for item in data["results"]
            ),
            stats=SearchStats.from_dict(data.get("stats", {})),
        )


@dataclass(frozen=True)
class KBestResult:
    """The top-k non-dominated routes at the target, best first.

    ``routes`` holds up to ``k`` complete routes whose arrival distributions
    form an antichain under weak stochastic dominance, ordered by descending
    ``P(cost <= budget)``.  Fewer than ``k`` entries means the target's
    frontier is genuinely smaller.  ``stats`` describes the one shared
    search; member results carry empty per-route stats.
    """

    query: RoutingQuery
    k: int
    routes: tuple[RoutingResult, ...]
    stats: SearchStats = field(default_factory=SearchStats)

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if len(self.routes) > self.k:
            raise ValueError("a k-best answer cannot hold more than k routes")

    def __len__(self) -> int:
        return len(self.routes)

    def __iter__(self) -> Iterator[RoutingResult]:
        return iter(self.routes)

    @property
    def found(self) -> bool:
        return bool(self.routes) and self.routes[0].found

    @property
    def best(self) -> RoutingResult | None:
        """The argmax route (what a plain ``pbr`` query would return)."""
        return self.routes[0] if self.routes else None

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (see :func:`result_from_dict`)."""
        return {
            "kind": "kbest",
            "query": self.query.to_dict(),
            "k": self.k,
            "routes": [route.to_dict() for route in self.routes],
            "stats": self.stats.to_dict(),
        }

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], network: RoadNetwork
    ) -> "KBestResult":
        return cls(
            query=RoutingQuery.from_dict(data["query"]),
            k=int(data["k"]),
            routes=tuple(
                RoutingResult.from_dict(item, network) for item in data["routes"]
            ),
            stats=SearchStats.from_dict(data.get("stats", {})),
        )


def result_from_dict(
    data: Mapping[str, Any], network: RoadNetwork
) -> "RoutingResult | MultiBudgetResult | KBestResult | Any":
    """Rebuild any serialised routing answer by its ``kind`` tag.

    Payloads without a tag are treated as plain :class:`RoutingResult`
    documents (the pre-tag wire format).  ``"batch"`` documents come back
    as :class:`~repro.routing.engine.BatchResult` (imported lazily — the
    engine module imports this one at load time).
    """
    kind = data.get("kind", "route")
    if kind == "multi_budget":
        return MultiBudgetResult.from_dict(data, network)
    if kind == "kbest":
        return KBestResult.from_dict(data, network)
    if kind == "route":
        return RoutingResult.from_dict(data, network)
    if kind == "batch":
        from .engine import BatchResult

        return BatchResult.from_dict(data, network)
    raise ValueError(f"unknown routing result kind {kind!r}")
