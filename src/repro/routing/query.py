"""Routing query/result value types and search statistics.

Everything a routing service exchanges with callers lives here: the
immutable :class:`RoutingQuery` (with explicit seconds-to-ticks conversion
through :meth:`RoutingQuery.from_seconds`), the :class:`SearchStats`
observability counters, and the answer types — :class:`RoutingResult` for
one query, :class:`MultiBudgetResult` for one source/target pair answered
over a whole budget vector, and :class:`KBestResult` for the top-k
non-dominated routes.  All are JSON-serialisable via ``to_dict`` /
``from_dict`` (each payload carries a ``kind`` tag;
:func:`result_from_dict` dispatches on it) so
:class:`~repro.routing.engine.RoutingEngine` responses are wire-ready.
"""

from __future__ import annotations

import math
import numbers
from dataclasses import dataclass, field, fields
from typing import Any, Iterable, Iterator, Mapping

from ..histograms import DiscreteDistribution
from ..network import Edge, RoadNetwork

__all__ = [
    "MAX_BUDGET_TICKS",
    "RoutingQuery",
    "SearchStats",
    "RoutingResult",
    "MultiBudgetResult",
    "KBestResult",
    "DepartWhenResult",
    "budget_ticks_for_departure",
    "normalize_budgets",
    "normalize_departures",
    "result_from_dict",
]

#: Upper bound on a query budget in grid ticks.  Distribution CDF reads clamp
#: to probability 1 beyond the support, so a budget of, say, ``3.6e9`` (a
#: caller passing epoch seconds or milliseconds by mistake) would silently
#: answer "certain arrival" for every path.  Budgets beyond this bound are a
#: unit error, not a routing problem, and are rejected at construction.
MAX_BUDGET_TICKS = 10**9


def _as_grid_int(value: Any, name: str) -> int:
    """Validate one query field as a plain grid integer.

    Rejects bools (``True`` is an ``int`` subtype) and non-integral values —
    a float budget is almost always a seconds value that belongs in
    :meth:`RoutingQuery.from_seconds` instead of silently truncating.
    """
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        message = f"{name} must be an integer, got {value!r}"
        if name == "budget":
            message += (
                "; budgets in seconds go through "
                "RoutingQuery.from_seconds(..., resolution=...)"
            )
        raise TypeError(message)
    return int(value)


@dataclass(frozen=True)
class RoutingQuery:
    """Probabilistic budget routing query.

    Find the path from ``source`` to ``target`` maximising
    ``P(travel time <= budget)``; ``budget`` is in distribution grid ticks.
    """

    source: int
    target: int
    budget: int

    def __post_init__(self) -> None:
        # Normalise (e.g. numpy integers) to plain ints so queries hash,
        # compare and serialise uniformly.
        object.__setattr__(self, "source", _as_grid_int(self.source, "source"))
        object.__setattr__(self, "target", _as_grid_int(self.target, "target"))
        object.__setattr__(self, "budget", _as_grid_int(self.budget, "budget"))
        if self.source == self.target:
            raise ValueError("source and target must differ")
        if self.budget < 1:
            raise ValueError("budget must be >= 1 tick")
        if self.budget > MAX_BUDGET_TICKS:
            raise ValueError(
                f"budget of {self.budget} ticks exceeds the distribution grid "
                f"bound ({MAX_BUDGET_TICKS}); CDF reads would clamp to 1.0. "
                "Was a seconds/milliseconds value passed where ticks were "
                "expected?  Use RoutingQuery.from_seconds for unit-aware "
                "construction."
            )

    @classmethod
    def from_seconds(
        cls,
        source: int,
        target: int,
        budget_seconds: float,
        *,
        resolution: float,
    ) -> "RoutingQuery":
        """Build a query from a wall-clock budget in seconds.

        ``resolution`` is the distribution grid's tick size in seconds (the
        :class:`~repro.core.costs.EdgeCostTable` resolution).  The budget is
        floored onto the grid — ``P(cost <= budget)`` must never credit time
        beyond the stated deadline — and sub-tick budgets are rejected
        rather than rounded up to a full tick the caller never granted.
        """
        if not (isinstance(resolution, numbers.Real) and math.isfinite(resolution)):
            raise ValueError(f"resolution must be a finite number, got {resolution!r}")
        if resolution <= 0:
            raise ValueError("resolution must be positive seconds per tick")
        if not (
            isinstance(budget_seconds, numbers.Real) and math.isfinite(budget_seconds)
        ):
            raise ValueError(
                f"budget_seconds must be a finite number, got {budget_seconds!r}"
            )
        if budget_seconds <= 0:
            raise ValueError("budget_seconds must be positive")
        # The 1e-9 relative slack absorbs float division noise so exact
        # multiples of the resolution land on their own tick.
        ticks = int(math.floor(budget_seconds / float(resolution) * (1 + 1e-9)))
        if ticks < 1:
            raise ValueError(
                f"budget of {budget_seconds} s is below one grid tick "
                f"({resolution} s); the query cannot be represented on the "
                "distribution grid"
            )
        return cls(source, target, ticks)

    def budget_seconds(self, resolution: float) -> float:
        """The tick budget expressed in seconds at ``resolution`` s/tick."""
        if resolution <= 0:
            raise ValueError("resolution must be positive seconds per tick")
        return self.budget * float(resolution)

    def to_dict(self) -> dict[str, int]:
        """JSON-ready representation (exact :meth:`from_dict` round-trip)."""
        return {"source": self.source, "target": self.target, "budget": self.budget}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RoutingQuery":
        return cls(
            source=data["source"], target=data["target"], budget=data["budget"]
        )


def normalize_budgets(budgets: Iterable[Any]) -> tuple[int, ...]:
    """Validate a budget vector into an ascending, de-duplicated tick tuple.

    Every member passes the same integer/grid validation as
    :attr:`RoutingQuery.budget`; duplicates are collapsed because a
    multi-budget search answers each distinct budget exactly once.
    """
    values = [_as_grid_int(value, "budget") for value in budgets]
    if not values:
        raise ValueError("budgets must contain at least one tick budget")
    for value in values:
        if value < 1:
            raise ValueError("every budget must be >= 1 tick")
        if value > MAX_BUDGET_TICKS:
            raise ValueError(
                f"budget of {value} ticks exceeds the distribution grid bound "
                f"({MAX_BUDGET_TICKS}); see RoutingQuery.from_seconds for "
                "unit-aware construction"
            )
    return tuple(sorted(set(values)))


def normalize_departures(departure_times: Iterable[Any]) -> tuple[float, ...]:
    """Validate a departure window into an ascending, de-duplicated tuple.

    Departure times are wall-clock seconds (service-clock or seconds of
    day — the caller's axis); every member must be a finite real number.
    """
    if isinstance(departure_times, (str, bytes)):
        raise TypeError("departure_times must be a sequence of seconds values")
    values = []
    for value in departure_times:
        if (
            isinstance(value, bool)
            or not isinstance(value, numbers.Real)
            or not math.isfinite(value)
        ):
            raise ValueError(
                f"departure times must be finite numbers, got {value!r}"
            )
        values.append(float(value))
    if not values:
        raise ValueError("departure_times must contain at least one time")
    return tuple(sorted(set(values)))


def budget_ticks_for_departure(
    departure_seconds: float, arrive_by_seconds: float, resolution: float
) -> int:
    """Tick budget for leaving at ``departure_seconds`` to arrive by
    ``arrive_by_seconds``.

    The remaining wall-clock window is floored onto the distribution grid
    with the same ``(1 + 1e-9)`` slack as :meth:`RoutingQuery.from_seconds`
    (``P(cost <= budget)`` must never credit time beyond the deadline).
    Returns 0 when the departure leaves no representable budget — the
    departure is infeasible, not an error.
    """
    if resolution <= 0:
        raise ValueError("resolution must be positive seconds per tick")
    window = float(arrive_by_seconds) - float(departure_seconds)
    if window <= 0:
        return 0
    ticks = int(math.floor(window / float(resolution) * (1 + 1e-9)))
    return max(0, ticks)


@dataclass
class SearchStats:
    """Observability counters for one PBR search (or one aggregated batch).

    ``pruned_by_bound`` counts individual labels rejected by the bound/pivot
    prunings; ``bound_terminations`` counts whole-search early exits (the
    best-first queue head could no longer beat the pivot, so the search is
    provably done).  The two are kept apart because they aggregate
    differently: summed across a batch, per-label prunes measure pruning
    *rates*, while terminations count at most one per member search.
    """

    labels_generated: int = 0
    labels_expanded: int = 0
    pruned_by_bound: int = 0
    pruned_by_dominance: int = 0
    pruned_unreachable: int = 0
    pivot_updates: int = 0
    bound_terminations: int = 0
    runtime_seconds: float = 0.0
    completed: bool = True

    @property
    def pruned_total(self) -> int:
        return self.pruned_by_bound + self.pruned_by_dominance + self.pruned_unreachable

    @classmethod
    def aggregate(cls, stats: Iterable["SearchStats"]) -> "SearchStats":
        """Sum counters/runtimes across searches (batch observability).

        ``completed`` is the conjunction: a batch only counts as complete
        when every member search ran to completion.  An empty iterable
        aggregates to zeroed counters with ``completed=True``.
        """
        total = cls()
        for item in stats:
            total.labels_generated += item.labels_generated
            total.labels_expanded += item.labels_expanded
            total.pruned_by_bound += item.pruned_by_bound
            total.pruned_by_dominance += item.pruned_by_dominance
            total.pruned_unreachable += item.pruned_unreachable
            total.pivot_updates += item.pivot_updates
            total.bound_terminations += item.bound_terminations
            total.runtime_seconds += item.runtime_seconds
            total.completed = total.completed and item.completed
        return total

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (exact :meth:`from_dict` round-trip)."""
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        data["pruned_total"] = self.pruned_total
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SearchStats":
        return cls(**{f.name: data[f.name] for f in fields(cls) if f.name in data})


@dataclass(frozen=True)
class RoutingResult:
    """Answer to one query.

    ``probability`` is the model's (combiner's) ``P(cost <= budget)`` for the
    returned path — the quantity PBR maximises.  ``path`` is empty only when
    the target is unreachable.
    """

    query: RoutingQuery
    path: tuple[Edge, ...]
    distribution: DiscreteDistribution | None
    probability: float
    stats: SearchStats = field(default_factory=SearchStats)

    @property
    def found(self) -> bool:
        return len(self.path) > 0

    @property
    def num_edges(self) -> int:
        return len(self.path)

    def path_vertices(self) -> list[int]:
        """Vertex sequence of the returned path."""
        if not self.path:
            return []
        return [self.path[0].source, *(edge.target for edge in self.path)]

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation.

        Edges serialise as ids (the network is shared context, not payload);
        :meth:`from_dict` resolves them back against a network.  The cost
        distribution serialises as ``{offset, probs}``.
        """
        return {
            "kind": "route",
            "query": self.query.to_dict(),
            "path": [edge.id for edge in self.path],
            "path_vertices": self.path_vertices(),
            "distribution": (
                None
                if self.distribution is None
                else {
                    "offset": self.distribution.offset,
                    "probs": [float(p) for p in self.distribution.probs],
                }
            ),
            "probability": float(self.probability),
            "found": self.found,
            "stats": self.stats.to_dict(),
        }

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], network: RoadNetwork
    ) -> "RoutingResult":
        """Rebuild a result against ``network`` (edge ids -> edges)."""
        dist_data = data.get("distribution")
        distribution = (
            None
            if dist_data is None
            else DiscreteDistribution(
                dist_data["offset"], dist_data["probs"], normalize=False
            )
        )
        return cls(
            query=RoutingQuery.from_dict(data["query"]),
            path=tuple(network.edge(edge_id) for edge_id in data["path"]),
            distribution=distribution,
            probability=float(data["probability"]),
            stats=SearchStats.from_dict(data.get("stats", {})),
        )


@dataclass(frozen=True)
class MultiBudgetResult:
    """One source/target pair answered for a whole budget vector.

    A single label search produces every entry: ``results[i]`` is the best
    route for ``budgets[i]`` (its member query carries that budget), and the
    Pareto frontier work is shared across the vector instead of re-run per
    budget.  ``stats`` describes the one shared search; member results carry
    empty per-route stats.
    """

    query: RoutingQuery
    budgets: tuple[int, ...]
    results: tuple[RoutingResult, ...]
    stats: SearchStats = field(default_factory=SearchStats)

    def __post_init__(self) -> None:
        if len(self.budgets) != len(self.results):
            raise ValueError("budgets and results must align one-to-one")
        if any(b <= a for a, b in zip(self.budgets, self.budgets[1:])):
            raise ValueError("budgets must be strictly ascending")

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[RoutingResult]:
        return iter(self.results)

    @property
    def found(self) -> bool:
        """True when at least one budget has a route."""
        return any(result.found for result in self.results)

    @property
    def probabilities(self) -> tuple[float, ...]:
        """Per-budget arrival probabilities, aligned with ``budgets``."""
        return tuple(result.probability for result in self.results)

    def items(self) -> Iterator[tuple[int, RoutingResult]]:
        """``(budget, result)`` pairs in ascending budget order."""
        return zip(self.budgets, self.results)

    def best_for(self, budget: int) -> RoutingResult:
        """The answer for one exact member budget (KeyError otherwise)."""
        for b, result in zip(self.budgets, self.results):
            if b == budget:
                return result
        raise KeyError(f"budget {budget} is not part of this result's vector")

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (see :func:`result_from_dict`)."""
        return {
            "kind": "multi_budget",
            "query": self.query.to_dict(),
            "budgets": list(self.budgets),
            "results": [result.to_dict() for result in self.results],
            "stats": self.stats.to_dict(),
        }

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], network: RoadNetwork
    ) -> "MultiBudgetResult":
        return cls(
            query=RoutingQuery.from_dict(data["query"]),
            budgets=tuple(int(b) for b in data["budgets"]),
            results=tuple(
                RoutingResult.from_dict(item, network) for item in data["results"]
            ),
            stats=SearchStats.from_dict(data.get("stats", {})),
        )


@dataclass(frozen=True)
class KBestResult:
    """The top-k non-dominated routes at the target, best first.

    ``routes`` holds up to ``k`` complete routes whose arrival distributions
    form an antichain under weak stochastic dominance, ordered by descending
    ``P(cost <= budget)``.  Fewer than ``k`` entries means the target's
    frontier is genuinely smaller.  ``stats`` describes the one shared
    search; member results carry empty per-route stats.
    """

    query: RoutingQuery
    k: int
    routes: tuple[RoutingResult, ...]
    stats: SearchStats = field(default_factory=SearchStats)

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if len(self.routes) > self.k:
            raise ValueError("a k-best answer cannot hold more than k routes")

    def __len__(self) -> int:
        return len(self.routes)

    def __iter__(self) -> Iterator[RoutingResult]:
        return iter(self.routes)

    @property
    def found(self) -> bool:
        return bool(self.routes) and self.routes[0].found

    @property
    def best(self) -> RoutingResult | None:
        """The argmax route (what a plain ``pbr`` query would return)."""
        return self.routes[0] if self.routes else None

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (see :func:`result_from_dict`)."""
        return {
            "kind": "kbest",
            "query": self.query.to_dict(),
            "k": self.k,
            "routes": [route.to_dict() for route in self.routes],
            "stats": self.stats.to_dict(),
        }

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], network: RoadNetwork
    ) -> "KBestResult":
        return cls(
            query=RoutingQuery.from_dict(data["query"]),
            k=int(data["k"]),
            routes=tuple(
                RoutingResult.from_dict(item, network) for item in data["routes"]
            ),
            stats=SearchStats.from_dict(data.get("stats", {})),
        )


@dataclass(frozen=True)
class DepartWhenResult:
    """Best budget-reliability over a departure window ("leave when?").

    One entry per candidate departure time: ``results[i]`` is the best
    route when leaving at ``departures[i]`` with ``budgets[i]`` ticks of
    budget (0 budget marks an infeasible departure — at or past the
    arrival deadline — and pairs with a ``None`` result).  All feasible
    entries are answered by **one** shared label search
    (:meth:`~repro.routing.engine.RoutingEngine.route_multi_budget` under
    the hood): in arrive-by mode a later departure is just a smaller
    budget against the same cost table, so the Pareto frontier work is
    shared across the whole window.  ``query`` carries the largest
    feasible budget; ``stats`` describes the one shared search.
    """

    query: RoutingQuery
    departures: tuple[float, ...]
    budgets: tuple[int, ...]
    results: tuple[RoutingResult | None, ...]
    arrive_by_seconds: float | None = None
    stats: SearchStats = field(default_factory=SearchStats)

    def __post_init__(self) -> None:
        if not self.departures:
            raise ValueError("a depart_when answer needs at least one departure")
        if not (len(self.departures) == len(self.budgets) == len(self.results)):
            raise ValueError("departures, budgets and results must align")
        if any(b <= a for a, b in zip(self.departures, self.departures[1:])):
            raise ValueError("departures must be strictly ascending")
        for budget, result in zip(self.budgets, self.results):
            if (budget == 0) != (result is None):
                raise ValueError(
                    "infeasible departures (budget 0) pair with None results"
                )

    def __len__(self) -> int:
        return len(self.departures)

    def items(self) -> Iterator[tuple[float, int, RoutingResult | None]]:
        """``(departure, budget, result)`` triples in departure order."""
        return zip(self.departures, self.budgets, self.results)

    @property
    def found(self) -> bool:
        """True when at least one departure has a route."""
        return any(r is not None and r.found for r in self.results)

    @property
    def probabilities(self) -> tuple[float, ...]:
        """Per-departure arrival probabilities (0.0 for infeasible ones)."""
        return tuple(
            0.0 if r is None else r.probability for r in self.results
        )

    @property
    def best_index(self) -> int | None:
        """Index of the best departure, or ``None`` when nothing routes.

        Highest arrival probability wins; exact ties go to the *latest*
        departure — leaving later for the same reliability strictly
        dominates under an arrive-by deadline (and is a harmless
        deterministic pick in fixed-budget mode).
        """
        best = None
        for index, result in enumerate(self.results):
            if result is None or not result.found:
                continue
            if best is None or result.probability >= self.results[best].probability:
                best = index
        return best

    @property
    def best(self) -> RoutingResult | None:
        """The best departure's route, or ``None`` when nothing routes."""
        index = self.best_index
        return None if index is None else self.results[index]

    @property
    def best_departure(self) -> float | None:
        """The best departure time in seconds, or ``None``."""
        index = self.best_index
        return None if index is None else self.departures[index]

    @classmethod
    def merge(cls, parts: "Iterable[DepartWhenResult]") -> "DepartWhenResult":
        """Combine window fragments answered separately into one result.

        The serving layer splits a window by temporal regime (each
        fragment searches its own cost table) and merges the fragments
        back; all parts must agree on source/target and arrive-by
        deadline, and their departure sets must not overlap.  The merged
        ``query`` carries the largest member budget; stats aggregate.
        """
        members = sorted(parts, key=lambda p: p.departures[0])
        if not members:
            raise ValueError("merge needs at least one part")
        first = members[0]
        pairs = {(p.query.source, p.query.target) for p in members}
        if len(pairs) > 1:
            raise ValueError("cannot merge answers for different OD pairs")
        if len({p.arrive_by_seconds for p in members}) > 1:
            raise ValueError("cannot merge answers with different deadlines")
        triples = [t for p in members for t in p.items()]
        triples.sort(key=lambda t: t[0])
        departures = tuple(t[0] for t in triples)
        if any(b <= a for a, b in zip(departures, departures[1:])):
            raise ValueError("merged parts must cover disjoint departures")
        query = max((p.query for p in members), key=lambda q: q.budget)
        return cls(
            query=query,
            departures=departures,
            budgets=tuple(t[1] for t in triples),
            results=tuple(t[2] for t in triples),
            arrive_by_seconds=first.arrive_by_seconds,
            stats=SearchStats.aggregate(p.stats for p in members),
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (see :func:`result_from_dict`)."""
        return {
            "kind": "depart_when",
            "query": self.query.to_dict(),
            "departures": list(self.departures),
            "budgets": list(self.budgets),
            "results": [
                None if r is None else r.to_dict() for r in self.results
            ],
            "arrive_by_seconds": self.arrive_by_seconds,
            "best_index": self.best_index,
            "best_departure": self.best_departure,
            "found": self.found,
            "stats": self.stats.to_dict(),
        }

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], network: RoadNetwork
    ) -> "DepartWhenResult":
        arrive_by = data.get("arrive_by_seconds")
        return cls(
            query=RoutingQuery.from_dict(data["query"]),
            departures=tuple(float(t) for t in data["departures"]),
            budgets=tuple(int(b) for b in data["budgets"]),
            results=tuple(
                None if item is None else RoutingResult.from_dict(item, network)
                for item in data["results"]
            ),
            arrive_by_seconds=None if arrive_by is None else float(arrive_by),
            stats=SearchStats.from_dict(data.get("stats", {})),
        )


def result_from_dict(
    data: Mapping[str, Any], network: RoadNetwork
) -> "RoutingResult | MultiBudgetResult | KBestResult | DepartWhenResult | Any":
    """Rebuild any serialised routing answer by its ``kind`` tag.

    Payloads without a tag are treated as plain :class:`RoutingResult`
    documents (the pre-tag wire format).  ``"batch"`` documents come back
    as :class:`~repro.routing.engine.BatchResult` (imported lazily — the
    engine module imports this one at load time).
    """
    kind = data.get("kind", "route")
    if kind == "multi_budget":
        return MultiBudgetResult.from_dict(data, network)
    if kind == "kbest":
        return KBestResult.from_dict(data, network)
    if kind == "depart_when":
        return DepartWhenResult.from_dict(data, network)
    if kind == "route":
        return RoutingResult.from_dict(data, network)
    if kind == "batch":
        from .engine import BatchResult

        return BatchResult.from_dict(data, network)
    raise ValueError(f"unknown routing result kind {kind!r}")
