"""Routing query/result value types and search statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..histograms import DiscreteDistribution
from ..network import Edge

__all__ = ["RoutingQuery", "SearchStats", "RoutingResult"]


@dataclass(frozen=True)
class RoutingQuery:
    """Probabilistic budget routing query.

    Find the path from ``source`` to ``target`` maximising
    ``P(travel time <= budget)``; ``budget`` is in distribution grid ticks.
    """

    source: int
    target: int
    budget: int

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise ValueError("source and target must differ")
        if self.budget < 1:
            raise ValueError("budget must be >= 1 tick")


@dataclass
class SearchStats:
    """Observability counters for one PBR search."""

    labels_generated: int = 0
    labels_expanded: int = 0
    pruned_by_bound: int = 0
    pruned_by_dominance: int = 0
    pruned_unreachable: int = 0
    pivot_updates: int = 0
    runtime_seconds: float = 0.0
    completed: bool = True

    @property
    def pruned_total(self) -> int:
        return self.pruned_by_bound + self.pruned_by_dominance + self.pruned_unreachable


@dataclass(frozen=True)
class RoutingResult:
    """Answer to one query.

    ``probability`` is the model's (combiner's) ``P(cost <= budget)`` for the
    returned path — the quantity PBR maximises.  ``path`` is empty only when
    the target is unreachable.
    """

    query: RoutingQuery
    path: tuple[Edge, ...]
    distribution: DiscreteDistribution | None
    probability: float
    stats: SearchStats = field(default_factory=SearchStats)

    @property
    def found(self) -> bool:
        return len(self.path) > 0

    @property
    def num_edges(self) -> int:
        return len(self.path)

    def path_vertices(self) -> list[int]:
        """Vertex sequence of the returned path."""
        if not self.path:
            return []
        return [self.path[0].source, *(edge.target for edge in self.path)]
