"""The anytime extension of probabilistic budget routing — value types.

The paper: "we give an acceptable maximum run-time x as an additional input,
and the algorithm returns the pivot path if search has not terminated after x
time units."  That contract lives in the engine — ``strategy="anytime"`` for
one bounded answer, :meth:`~repro.routing.engine.RoutingEngine.route_stream`
for an improving sweep.  This module keeps the :class:`AnytimePoint` value
type used to summarise quality-vs-time curves (experiment E8 and the anytime
columns P1/P5/P10 of the quality table E5).
"""

from __future__ import annotations

from dataclasses import dataclass

from .query import RoutingResult

__all__ = ["AnytimePoint"]


@dataclass(frozen=True)
class AnytimePoint:
    """One point of a quality-vs-time curve."""

    time_limit_seconds: float
    probability: float
    completed: bool
    num_edges: int

    @classmethod
    def from_result(
        cls, time_limit_seconds: float, result: RoutingResult
    ) -> "AnytimePoint":
        """Summarise one bounded-search answer as a curve point."""
        return cls(
            time_limit_seconds=time_limit_seconds,
            probability=result.probability,
            completed=result.stats.completed,
            num_edges=result.num_edges,
        )
