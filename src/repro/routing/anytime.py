"""The anytime extension of probabilistic budget routing.

The paper: "we give an acceptable maximum run-time x as an additional input,
and the algorithm returns the pivot path if search has not terminated after x
time units."  :class:`AnytimeRouter` wraps the base router with that contract
plus a sweep helper used by the quality-vs-time experiment (E8) and the
anytime columns P1/P5/P10 of the quality table (E5).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from ..core.models import CostCombiner
from ..network import RoadNetwork
from .budget import PruningConfig, _BudgetSearch
from .heuristics import OptimisticHeuristic
from .query import RoutingQuery, RoutingResult

__all__ = ["AnytimePoint", "AnytimeRouter"]


@dataclass(frozen=True)
class AnytimePoint:
    """One point of a quality-vs-time curve."""

    time_limit_seconds: float
    probability: float
    completed: bool
    num_edges: int


class AnytimeRouter:
    """PBR with a wall-clock budget; returns the pivot on expiry.

    Deprecated direct-construction entry point: new code should use
    :class:`repro.routing.RoutingEngine` with ``strategy="anytime"`` (one
    bounded answer) or :meth:`RoutingEngine.route_stream` (improving pivots
    across a sweep of limits).
    """

    def __init__(
        self,
        network: RoadNetwork,
        combiner: CostCombiner,
        *,
        pruning: PruningConfig | None = None,
    ) -> None:
        warnings.warn(
            "AnytimeRouter is deprecated; use repro.routing.RoutingEngine "
            "with strategy='anytime' or RoutingEngine.route_stream instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self._router = _BudgetSearch(network, combiner, pruning=pruning)

    @staticmethod
    def _check_limit(time_limit_seconds: float) -> float:
        if time_limit_seconds <= 0:
            raise ValueError("time_limit_seconds must be positive")
        return time_limit_seconds

    def route(self, query: RoutingQuery, time_limit_seconds: float) -> RoutingResult:
        """Answer within ``time_limit_seconds`` (pivot path on timeout)."""
        return self._router.route(
            query, time_limit_seconds=self._check_limit(time_limit_seconds)
        )

    def route_unbounded(self, query: RoutingQuery) -> RoutingResult:
        """The P-infinity reference: run the search to completion."""
        return self._router.route(query)

    def quality_curve(
        self, query: RoutingQuery, time_limits: list[float]
    ) -> list[AnytimePoint]:
        """Re-run the query under each time limit (ascending sweep).

        Each limit is an independent run — the anytime algorithm is
        deterministic given a limit, so the curve shows exactly what a user
        asking for at most ``x`` seconds would have received.  One optimistic
        heuristic is built up front and shared by every run: the reverse
        Dijkstra is identical across limits, and rebuilding it inside each
        timed run would distort the reported curve on small graphs.
        """
        heuristic = OptimisticHeuristic.shared(
            self._router.network, self._router.combiner.costs, query.target
        )
        points = []
        for limit in sorted(time_limits):
            result = self._router.route(
                query, time_limit_seconds=self._check_limit(limit), heuristic=heuristic
            )
            points.append(
                AnytimePoint(
                    time_limit_seconds=limit,
                    probability=result.probability,
                    completed=result.stats.completed,
                    num_edges=result.num_edges,
                )
            )
        return points
