"""Optimistic remaining-cost heuristic (PBR pruning rule (a)).

An A*-inspired lower bound: ``h(v)`` is the minimum *possible* travel time
(in ticks) from ``v`` to the destination, computed by a reverse Dijkstra over
each edge's minimum histogram value.  Because no path realisation can beat
``h``, shifting a label's distribution by ``h(v)`` (rule (c), cost shifting)
yields an upper bound on the label's achievable arrival probability that is
sound for pruning against the pivot path.

The reverse Dijkstra is the only super-linear setup cost of a PBR query, and
repeated queries to the same destination — every anytime sweep, every
experiment workload pass, multi-user traffic to popular targets — would
otherwise rebuild it from scratch.  :meth:`OptimisticHeuristic.shared`
therefore memoises heuristics in a process-wide LRU keyed by
``(network, cost table, cost-table version, target)``; see PERFORMANCE.md
for the invalidation contract.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable

from ..core.costs import EdgeCostTable
from ..histograms import DiscreteDistribution
from ..network import RoadNetwork
from ..network.paths import reverse_dijkstra

__all__ = [
    "OptimisticHeuristic",
    "clear_heuristic_cache",
    "shared_versioned",
    "HEURISTIC_CACHE_SIZE",
]

#: Maximum number of shared precomputation entries kept alive by
#: :func:`shared_versioned` (per-destination heuristic tables and per-k
#: landmark tables count against the same budget).
HEURISTIC_CACHE_SIZE = 128

#: LRU of shared precomputations.  Values hold strong references to their
#: network and cost table, which keeps the ``id()``-based keys stable for
#: exactly as long as the entry lives.  Keys: ``(id(network), id(costs),
#: network.version, costs.version, slot)`` — the slot is the target vertex
#: for per-destination heuristics, or a type-discriminating tuple such as
#: ``("landmarks", k)`` for tables shared across every target.
_SHARED: "OrderedDict[tuple[int, int, int, int, Hashable], Any]" = OrderedDict()

#: Guards every structural operation on :data:`_SHARED`.  The LRU mixes
#: ``move_to_end`` / ``del`` / ``popitem`` — interleaved from two serving
#: threads those corrupt the order dict or raise spurious ``KeyError``s.
#: The reverse Dijkstra itself is built *outside* the lock so concurrent
#: misses for distinct targets proceed in parallel (two threads racing the
#: same key may both build; one result wins, the other is garbage — cheap
#: compared to serialising every build behind one global mutex).
_SHARED_LOCK = threading.Lock()


def clear_heuristic_cache() -> None:
    """Drop every shared precomputation (tests and long-lived servers)."""
    with _SHARED_LOCK:
        _SHARED.clear()


def shared_versioned(
    network: RoadNetwork,
    costs: EdgeCostTable,
    slot: Hashable,
    build: Callable[[], Any],
) -> Any:
    """Fetch-or-build one entry of the process-wide versioned LRU.

    Entries are keyed by object identity of ``(network, costs)`` plus both
    mutation ``version`` counters, so adding vertices/edges or editing
    histograms (``set_cost`` / ``apply_deltas``) transparently misses onto a
    fresh build while stale-version entries are evicted eagerly (they can
    never be hit again and would otherwise pin dead tables until LRU churn).

    ``slot`` distinguishes entry flavours for one ``(network, costs)`` pair;
    ``build`` runs *outside* the lock on a miss, so concurrent misses for
    distinct slots proceed in parallel (two threads racing one slot may both
    build; one result wins, the loser is garbage — cheap compared to
    serialising every build behind one global mutex).
    """
    ids = (id(network), id(costs))
    versions = (getattr(network, "version", 0), getattr(costs, "version", 0))
    key = (*ids, *versions, slot)
    with _SHARED_LOCK:
        cached = _SHARED.get(key)
        if cached is not None:
            _SHARED.move_to_end(key)
            return cached
        stale = [
            k
            for k in _SHARED
            if (k[0], k[1]) == ids and (k[2], k[3]) != versions
        ]
        for k in stale:
            del _SHARED[k]
    value = build()
    with _SHARED_LOCK:
        winner = _SHARED.setdefault(key, value)
        _SHARED.move_to_end(key)
        while len(_SHARED) > HEURISTIC_CACHE_SIZE:
            _SHARED.popitem(last=False)
        return winner


class OptimisticHeuristic:
    """Per-destination table of optimistic remaining costs (ticks)."""

    def __init__(self, network: RoadNetwork, costs: EdgeCostTable, target: int) -> None:
        self.network = network
        self.costs = costs
        self.target = target
        self._table = reverse_dijkstra(
            network, target, weight=lambda edge: float(costs.min_ticks(edge))
        )

    @classmethod
    def shared(
        cls, network: RoadNetwork, costs: EdgeCostTable, target: int
    ) -> "OptimisticHeuristic":
        """A cached heuristic for ``(network, costs, target)``.

        Cache entries are keyed by object identity plus both mutation
        ``version`` counters (the network's and the cost table's), so adding
        vertices/edges or editing histograms (``set_cost``) transparently
        misses onto a fresh reverse Dijkstra while stale entries age out of
        the LRU.  The fetch-or-build (and the build-outside-the-lock policy)
        lives in :func:`shared_versioned`, which the columnar core's landmark
        tables share.
        """
        return shared_versioned(
            network, costs, target, lambda: cls(network, costs, target)
        )

    @property
    def table(self) -> dict[int, float]:
        """The raw ``vertex -> optimistic remaining ticks`` map.

        Exposed for the search hot loop, which wants one dictionary probe per
        label instead of separate ``reachable``/``remaining_ticks`` calls.
        Treat it as read-only.
        """
        return self._table

    def reachable(self, vertex_id: int) -> bool:
        """True when the destination is reachable from ``vertex_id``."""
        return vertex_id in self._table

    def remaining_ticks(self, vertex_id: int) -> int:
        """Lower bound on ticks from ``vertex_id`` to the destination.

        Raises ``KeyError`` for vertices that cannot reach the destination;
        call :meth:`reachable` first.
        """
        return int(self._table[vertex_id])

    def upper_bound_probability(
        self,
        distribution: DiscreteDistribution,
        vertex_id: int,
        budget: int,
        *,
        use_shift: bool = True,
    ) -> float:
        """Upper bound on the arrival probability of any completion.

        With cost shifting the label's distribution is translated by the
        optimistic remaining cost before evaluating the budget CDF; without
        it the bound degrades to ``P(cost so far <= budget)`` (still sound,
        strictly looser — this is what the rule-(c) ablation measures).
        """
        remaining = self._table.get(vertex_id)
        if remaining is None:
            return 0.0
        if use_shift:
            return distribution.prob_within(budget - int(remaining))
        return distribution.prob_within(budget)
