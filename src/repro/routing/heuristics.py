"""Optimistic remaining-cost heuristic (PBR pruning rule (a)).

An A*-inspired lower bound: ``h(v)`` is the minimum *possible* travel time
(in ticks) from ``v`` to the destination, computed by a reverse Dijkstra over
each edge's minimum histogram value.  Because no path realisation can beat
``h``, shifting a label's distribution by ``h(v)`` (rule (c), cost shifting)
yields an upper bound on the label's achievable arrival probability that is
sound for pruning against the pivot path.
"""

from __future__ import annotations

from ..core.costs import EdgeCostTable
from ..histograms import DiscreteDistribution
from ..network import RoadNetwork
from ..network.paths import reverse_dijkstra

__all__ = ["OptimisticHeuristic"]


class OptimisticHeuristic:
    """Per-destination table of optimistic remaining costs (ticks)."""

    def __init__(self, network: RoadNetwork, costs: EdgeCostTable, target: int) -> None:
        self.network = network
        self.target = target
        self._table = reverse_dijkstra(
            network, target, weight=lambda edge: float(costs.min_ticks(edge))
        )

    def reachable(self, vertex_id: int) -> bool:
        """True when the destination is reachable from ``vertex_id``."""
        return vertex_id in self._table

    def remaining_ticks(self, vertex_id: int) -> int:
        """Lower bound on ticks from ``vertex_id`` to the destination.

        Raises ``KeyError`` for vertices that cannot reach the destination;
        call :meth:`reachable` first.
        """
        return int(self._table[vertex_id])

    def upper_bound_probability(
        self,
        distribution: DiscreteDistribution,
        vertex_id: int,
        budget: int,
        *,
        use_shift: bool = True,
    ) -> float:
        """Upper bound on the arrival probability of any completion.

        With cost shifting the label's distribution is translated by the
        optimistic remaining cost before evaluating the budget CDF; without
        it the bound degrades to ``P(cost so far <= budget)`` (still sound,
        strictly looser — this is what the rule-(c) ablation measures).
        """
        if not self.reachable(vertex_id):
            return 0.0
        if use_shift:
            return distribution.prob_within(budget - self.remaining_ticks(vertex_id))
        return distribution.prob_within(budget)
