"""The :class:`RoutingEngine` facade — one entry point for all routing.

The paper frames stochastic routing as a single query interface
parameterised by budget, time limit and cost model.  Before this module,
every caller hand-wired :class:`ProbabilisticBudgetRouter` /
:class:`AnytimeRouter` / the baseline functions together with a cost
combiner, budget-in-ticks conversion and heuristic-cache management.  The
engine centralises that wiring the way production trip-dispatch stacks do:

* it **owns** the network, the combiner and the shared
  :class:`~repro.routing.heuristics.OptimisticHeuristic` state, so repeated
  and batched queries amortise the reverse-Dijkstra and cached-CDF costs;
* :meth:`RoutingEngine.route` answers one query under any registered
  **strategy** (``"pbr"``, ``"anytime"``, ``"expected_time"``,
  ``"oracle"`` out of the box);
* :meth:`RoutingEngine.route_many` serves batch workloads, grouping
  queries by target so the heuristic LRU stays hot, and returns a
  :class:`BatchResult` with aggregated :class:`SearchStats`;
* :meth:`RoutingEngine.route_stream` yields improving anytime pivots over
  an ascending sweep of wall-clock limits, sharing one heuristic across
  the whole sweep.

New workloads (multi-budget routing, k-best paths, ...) plug in through the
:func:`register_strategy` decorator without touching the engine:

    >>> @register_strategy("my_strategy")
    ... class MyStrategy(RoutingStrategy):
    ...     def route(self, engine, query, *, time_limit_seconds=None):
    ...         ...

See PERFORMANCE.md ("Engine API") for the cache-reuse contract.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Sequence

from ..core.models import CostCombiner
from ..network import RoadNetwork
from .baselines import exhaustive_best_path, expected_time_path
from .budget import PruningConfig, _BudgetSearch
from .heuristics import OptimisticHeuristic
from .query import RoutingQuery, RoutingResult, SearchStats

__all__ = [
    "BatchResult",
    "RoutingEngine",
    "RoutingStrategy",
    "available_strategies",
    "register_strategy",
]


# ----------------------------------------------------------------------
# Strategy registry
# ----------------------------------------------------------------------


class RoutingStrategy(abc.ABC):
    """One way of answering a :class:`RoutingQuery` through the engine.

    Strategies are stateless policy objects: the engine hands them itself
    (network, combiner, shared search and heuristic state) plus the query.
    Register implementations with :func:`register_strategy`.
    """

    #: Registry name; assigned by :func:`register_strategy`.
    name: str = "<unregistered>"

    #: Whether the strategy honours ``time_limit_seconds``.  Strategies that
    #: cannot bound their latency reject a limit instead of silently
    #: ignoring it — a service must not promise latency it cannot keep.
    supports_time_limit: bool = False

    @abc.abstractmethod
    def route(
        self,
        engine: "RoutingEngine",
        query: RoutingQuery,
        *,
        time_limit_seconds: float | None = None,
        **kwargs: Any,
    ) -> RoutingResult:
        """Answer ``query`` using ``engine``'s shared state."""

    def check_time_limit(self, time_limit_seconds: float | None) -> float | None:
        """Validate the limit against this strategy's capabilities."""
        if time_limit_seconds is None:
            return None
        if not self.supports_time_limit:
            raise ValueError(
                f"strategy {self.name!r} does not support time_limit_seconds"
            )
        # NaN/inf would pass a bare `<= 0` check and then never trip the
        # search's wall-clock comparison — an unbounded run disguised as a
        # bounded one.
        if not math.isfinite(time_limit_seconds) or time_limit_seconds <= 0:
            raise ValueError("time_limit_seconds must be a positive finite number")
        return float(time_limit_seconds)


_STRATEGIES: dict[str, type[RoutingStrategy]] = {}


def register_strategy(name: str):
    """Class decorator registering a :class:`RoutingStrategy` under ``name``.

    The registry is process-wide: any module can add a strategy and every
    :class:`RoutingEngine` can serve it immediately.  Names are unique —
    re-registering an existing name raises rather than silently shadowing
    a strategy another caller may depend on.
    """
    if not isinstance(name, str) or not name:
        raise ValueError("strategy name must be a non-empty string")

    def decorator(cls: type[RoutingStrategy]) -> type[RoutingStrategy]:
        if not (isinstance(cls, type) and issubclass(cls, RoutingStrategy)):
            raise TypeError("@register_strategy expects a RoutingStrategy subclass")
        if name in _STRATEGIES:
            raise ValueError(f"routing strategy {name!r} is already registered")
        cls.name = name
        _STRATEGIES[name] = cls
        return cls

    return decorator


def available_strategies() -> tuple[str, ...]:
    """Sorted names of every registered routing strategy."""
    return tuple(sorted(_STRATEGIES))


# ----------------------------------------------------------------------
# Built-in strategies
# ----------------------------------------------------------------------


@register_strategy("pbr")
class PBRStrategy(RoutingStrategy):
    """The paper's algorithm: best-first PBR search with all prunings.

    Optionally anytime — with ``time_limit_seconds`` the search returns the
    pivot path when the wall clock expires.
    """

    supports_time_limit = True

    def route(
        self,
        engine: "RoutingEngine",
        query: RoutingQuery,
        *,
        time_limit_seconds: float | None = None,
        heuristic: OptimisticHeuristic | None = None,
    ) -> RoutingResult:
        return engine._search.route(
            query,
            time_limit_seconds=self.check_time_limit(time_limit_seconds),
            heuristic=heuristic,
        )


@register_strategy("anytime")
class AnytimeStrategy(PBRStrategy):
    """PBR under a mandatory wall-clock budget (pivot path on expiry).

    Identical search to ``"pbr"``; the separate strategy makes the
    bounded-latency contract explicit — a missing limit is a caller bug,
    not an accidental unbounded search.
    """

    def route(
        self,
        engine: "RoutingEngine",
        query: RoutingQuery,
        *,
        time_limit_seconds: float | None = None,
        heuristic: OptimisticHeuristic | None = None,
    ) -> RoutingResult:
        if time_limit_seconds is None:
            raise ValueError("the 'anytime' strategy requires time_limit_seconds")
        return super().route(
            engine,
            query,
            time_limit_seconds=time_limit_seconds,
            heuristic=heuristic,
        )


@register_strategy("expected_time")
class ExpectedTimeStrategy(RoutingStrategy):
    """Baseline: deterministic shortest path over average travel times."""

    def route(
        self,
        engine: "RoutingEngine",
        query: RoutingQuery,
        *,
        time_limit_seconds: float | None = None,
    ) -> RoutingResult:
        self.check_time_limit(time_limit_seconds)
        return expected_time_path(engine.network, engine.combiner, query)


@register_strategy("oracle")
class OracleStrategy(RoutingStrategy):
    """Baseline: exhaustive enumeration of simple paths (small graphs only)."""

    def route(
        self,
        engine: "RoutingEngine",
        query: RoutingQuery,
        *,
        time_limit_seconds: float | None = None,
        max_edges: int = 12,
    ) -> RoutingResult:
        self.check_time_limit(time_limit_seconds)
        return exhaustive_best_path(
            engine.network, engine.combiner, query, max_edges=max_edges
        )


# ----------------------------------------------------------------------
# Batch results
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BatchResult:
    """Answers to one :meth:`RoutingEngine.route_many` call.

    ``results`` preserves the input query order; ``stats`` aggregates every
    member search (see :meth:`SearchStats.aggregate`).
    """

    results: tuple[RoutingResult, ...]
    stats: SearchStats

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[RoutingResult]:
        return iter(self.results)

    def __getitem__(self, index: int) -> RoutingResult:
        return self.results[index]

    @property
    def num_found(self) -> int:
        return sum(1 for result in self.results if result.found)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation of the whole batch."""
        return {
            "results": [result.to_dict() for result in self.results],
            "stats": self.stats.to_dict(),
            "num_found": self.num_found,
        }


# ----------------------------------------------------------------------
# The facade
# ----------------------------------------------------------------------


class RoutingEngine:
    """Unified entry point for PBR, anytime, baseline and batch routing.

    One engine per (network, combiner) pair; it is what a routing service
    instantiates once and serves all traffic through.  All strategies share
    the engine's search state, the combiner's per-edge cost memo, and the
    process-wide optimistic-heuristic LRU, so heavy traffic to popular
    destinations pays the per-target setup cost once.
    """

    def __init__(
        self,
        network: RoadNetwork,
        combiner: CostCombiner,
        *,
        pruning: PruningConfig | None = None,
    ) -> None:
        self.network = network
        self.combiner = combiner
        self.pruning = pruning or PruningConfig()
        self._search = _BudgetSearch(network, combiner, pruning=self.pruning)
        self._strategies: dict[str, RoutingStrategy] = {}

    def __repr__(self) -> str:
        return (
            f"RoutingEngine(network={self.network!r}, "
            f"combiner={type(self.combiner).__name__})"
        )

    # ------------------------------------------------------------------
    # Query construction
    # ------------------------------------------------------------------

    @property
    def resolution(self) -> float:
        """Seconds per distribution grid tick (the cost table's resolution)."""
        return self.combiner.costs.resolution

    def query(self, source: int, target: int, budget: int) -> RoutingQuery:
        """Build a validated tick-budget query."""
        return RoutingQuery(source, target, budget)

    def query_from_seconds(
        self, source: int, target: int, budget_seconds: float
    ) -> RoutingQuery:
        """Build a query from a seconds budget on this engine's grid."""
        return RoutingQuery.from_seconds(
            source, target, budget_seconds, resolution=self.resolution
        )

    # ------------------------------------------------------------------
    # Strategies
    # ------------------------------------------------------------------

    def strategy(self, name: str) -> RoutingStrategy:
        """The (per-engine cached) strategy instance registered as ``name``."""
        instance = self._strategies.get(name)
        if instance is None:
            cls = _STRATEGIES.get(name)
            if cls is None:
                raise KeyError(
                    f"unknown routing strategy {name!r}; available: "
                    f"{', '.join(available_strategies())}"
                )
            instance = cls()
            self._strategies[name] = instance
        return instance

    def heuristic_for(self, target: int) -> OptimisticHeuristic:
        """The shared optimistic heuristic for ``target`` (LRU-cached)."""
        return OptimisticHeuristic.shared(self.network, self.combiner.costs, target)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def route(
        self,
        query: RoutingQuery,
        *,
        strategy: str = "pbr",
        time_limit_seconds: float | None = None,
        **kwargs: Any,
    ) -> RoutingResult:
        """Answer one query under ``strategy``.

        ``time_limit_seconds`` bounds the wall clock for strategies that
        support it (``"pbr"`` optionally, ``"anytime"`` mandatorily);
        strategy-specific options (e.g. the oracle's ``max_edges``) pass
        through ``kwargs``.
        """
        return self.strategy(strategy).route(
            self, query, time_limit_seconds=time_limit_seconds, **kwargs
        )

    def route_many(
        self,
        queries: Iterable[RoutingQuery],
        *,
        strategy: str = "pbr",
        time_limit_seconds: float | None = None,
        **kwargs: Any,
    ) -> BatchResult:
        """Answer a batch of queries, amortising shared caches across them.

        Queries are *processed* grouped by target — consecutive same-target
        searches hit the optimistic-heuristic LRU even when the batch spans
        more distinct targets than the LRU holds — but ``results`` preserves
        the input order.  ``time_limit_seconds`` applies per query, so a
        batch's worst-case latency is ``len(queries) * time_limit_seconds``;
        strategy-specific ``kwargs`` (e.g. the oracle's ``max_edges``) apply
        to every member, exactly as in :meth:`route`.  An empty batch
        returns zero results and zeroed aggregate stats.
        """
        query_list = list(queries)
        order = sorted(range(len(query_list)), key=lambda i: query_list[i].target)
        routed = {
            index: self.route(
                query_list[index],
                strategy=strategy,
                time_limit_seconds=time_limit_seconds,
                **kwargs,
            )
            for index in order
        }
        results = tuple(routed[index] for index in range(len(query_list)))
        return BatchResult(
            results=results,
            stats=SearchStats.aggregate(result.stats for result in results),
        )

    def route_stream(
        self,
        query: RoutingQuery,
        time_limits: Sequence[float],
    ) -> Iterator[RoutingResult]:
        """Yield improving anytime pivots over ascending wall-clock limits.

        Each yielded result is what a caller granting at most that limit
        would have received; because each run is an independent
        deterministic search, later (larger) limits never yield a worse
        pivot.  ``time_limits`` must be strictly increasing and positive —
        a non-increasing sweep would re-spend wall clock for answers the
        stream already delivered, so it is rejected (at the call site, not
        on first iteration) as a caller bug.  One optimistic heuristic is
        built up front and shared by every run so the stream measures
        search time, not repeated reverse Dijkstras.
        """
        limits = [float(limit) for limit in time_limits]
        if any(not math.isfinite(limit) or limit <= 0 for limit in limits):
            raise ValueError("route_stream time limits must be positive and finite")
        if any(b <= a for a, b in zip(limits, limits[1:])):
            raise ValueError(
                "route_stream time limits must be strictly increasing; "
                "sort/deduplicate the sweep before streaming"
            )

        def stream() -> Iterator[RoutingResult]:
            heuristic = self.heuristic_for(query.target)
            for limit in limits:
                yield self._search.route(
                    query, time_limit_seconds=limit, heuristic=heuristic
                )

        return stream()

    # ------------------------------------------------------------------
    # Serialisation convenience
    # ------------------------------------------------------------------

    def result_from_dict(self, data: Mapping[str, Any]) -> RoutingResult:
        """Rebuild a serialised result against this engine's network."""
        return RoutingResult.from_dict(data, self.network)
