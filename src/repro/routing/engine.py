"""The :class:`RoutingEngine` facade — one entry point for all routing.

The paper frames stochastic routing as a single query interface
parameterised by budget, time limit and cost model.  Before this module,
every caller hand-wired the label search, the baseline functions, a cost
combiner, budget-in-ticks conversion and heuristic-cache management
together.  The engine centralises that wiring the way production
trip-dispatch stacks do:

* it **owns** the network, the combiner and the shared
  :class:`~repro.routing.heuristics.OptimisticHeuristic` state, so repeated
  and batched queries amortise the reverse-Dijkstra and cached-CDF costs;
* :meth:`RoutingEngine.route` answers one query under any registered
  **strategy** (``"pbr"``, ``"anytime"``, ``"expected_time"``, ``"oracle"``,
  ``"multi_budget"``, ``"kbest"`` out of the box);
* :meth:`RoutingEngine.route_many` serves batch workloads, grouping
  queries by target so the heuristic LRU stays hot, and returns a
  :class:`BatchResult` with aggregated :class:`SearchStats`;
  ``workers=N`` shards the batch by target across a multiprocessing pool
  (each worker rebuilds the engine from a pickled spec);
* :meth:`RoutingEngine.route_stream` yields improving anytime pivots over
  an ascending sweep of wall-clock limits, sharing one heuristic across
  the whole sweep;
* :meth:`RoutingEngine.route_multi_budget` answers one source/target pair
  for a whole budget vector in a single label search, and
  :meth:`RoutingEngine.route_kbest` surfaces the top-k non-dominated routes
  at the target instead of just the argmax.

New workloads plug in through the :func:`register_strategy` decorator
without touching the engine:

    >>> @register_strategy("my_strategy")
    ... class MyStrategy(RoutingStrategy):
    ...     def route(self, engine, query, *, time_limit_seconds=None):
    ...         ...

See PERFORMANCE.md ("Engine API") for the cache-reuse contract.
"""

from __future__ import annotations

import abc
import math
import multiprocessing
import numbers
import pickle
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Sequence

from ..core.models import CostCombiner
from ..network import RoadNetwork
from .baselines import exhaustive_best_path, expected_time_path
from .budget import PruningConfig, _BudgetSearch
from .heuristics import OptimisticHeuristic
from .query import (
    DepartWhenResult,
    KBestResult,
    MultiBudgetResult,
    RoutingQuery,
    RoutingResult,
    SearchStats,
    budget_ticks_for_departure,
    normalize_budgets,
    normalize_departures,
    result_from_dict,
)

__all__ = [
    "BatchResult",
    "RoutingEngine",
    "RoutingStrategy",
    "available_strategies",
    "register_strategy",
]

#: Any answer a strategy may produce.  ``None`` means the strategy declined
#: to answer (e.g. its wall-clock limit expired before it had anything) —
#: distinct from a ``RoutingResult`` with ``found == False``, which is a
#: definitive "no route exists".
StrategyAnswer = (
    RoutingResult | MultiBudgetResult | KBestResult | DepartWhenResult | None
)


# ----------------------------------------------------------------------
# Strategy registry
# ----------------------------------------------------------------------


class RoutingStrategy(abc.ABC):
    """One way of answering a :class:`RoutingQuery` through the engine.

    Strategies are stateless policy objects: the engine hands them itself
    (network, combiner, shared search and heuristic state) plus the query.
    Register implementations with :func:`register_strategy`.
    """

    #: Registry name; assigned by :func:`register_strategy`.
    name: str = "<unregistered>"

    #: Whether the strategy honours ``time_limit_seconds``.  Strategies that
    #: cannot bound their latency reject a limit instead of silently
    #: ignoring it — a service must not promise latency it cannot keep.
    supports_time_limit: bool = False

    @abc.abstractmethod
    def route(
        self,
        engine: "RoutingEngine",
        query: RoutingQuery,
        *,
        time_limit_seconds: float | None = None,
        **kwargs: Any,
    ) -> StrategyAnswer:
        """Answer ``query`` using ``engine``'s shared state.

        Most strategies return a :class:`RoutingResult`; richer strategies
        may return :class:`MultiBudgetResult` / :class:`KBestResult` (any
        answer type exposing ``found``, ``stats`` and ``to_dict``).
        Returning ``None`` means "no answer" (e.g. a time limit expired
        before the strategy had anything) and is reported distinctly from a
        found-nothing result by :class:`BatchResult`.
        """

    def check_time_limit(self, time_limit_seconds: float | None) -> float | None:
        """Validate the limit against this strategy's capabilities."""
        if time_limit_seconds is None:
            return None
        if not self.supports_time_limit:
            raise ValueError(
                f"strategy {self.name!r} does not support time_limit_seconds"
            )
        # NaN/inf would pass a bare `<= 0` check and then never trip the
        # search's wall-clock comparison — an unbounded run disguised as a
        # bounded one.
        if not math.isfinite(time_limit_seconds) or time_limit_seconds <= 0:
            raise ValueError("time_limit_seconds must be a positive finite number")
        return float(time_limit_seconds)


_STRATEGIES: dict[str, type[RoutingStrategy]] = {}


def register_strategy(name: str):
    """Class decorator registering a :class:`RoutingStrategy` under ``name``.

    The registry is process-wide: any module can add a strategy and every
    :class:`RoutingEngine` can serve it immediately.  Names are unique —
    re-registering an existing name raises rather than silently shadowing
    a strategy another caller may depend on.
    """
    if not isinstance(name, str) or not name:
        raise ValueError("strategy name must be a non-empty string")

    def decorator(cls: type[RoutingStrategy]) -> type[RoutingStrategy]:
        if not (isinstance(cls, type) and issubclass(cls, RoutingStrategy)):
            raise TypeError("@register_strategy expects a RoutingStrategy subclass")
        if name in _STRATEGIES:
            raise ValueError(f"routing strategy {name!r} is already registered")
        cls.name = name
        _STRATEGIES[name] = cls
        return cls

    return decorator


def available_strategies() -> tuple[str, ...]:
    """Sorted names of every registered routing strategy."""
    return tuple(sorted(_STRATEGIES))


# ----------------------------------------------------------------------
# Built-in strategies
# ----------------------------------------------------------------------


@register_strategy("pbr")
class PBRStrategy(RoutingStrategy):
    """The paper's algorithm: best-first PBR search with all prunings.

    Optionally anytime — with ``time_limit_seconds`` the search returns the
    pivot path when the wall clock expires.
    """

    supports_time_limit = True

    def route(
        self,
        engine: "RoutingEngine",
        query: RoutingQuery,
        *,
        time_limit_seconds: float | None = None,
        heuristic: OptimisticHeuristic | None = None,
    ) -> RoutingResult:
        return engine._search.route(
            query,
            time_limit_seconds=self.check_time_limit(time_limit_seconds),
            heuristic=heuristic,
        )


@register_strategy("anytime")
class AnytimeStrategy(PBRStrategy):
    """PBR under a mandatory wall-clock budget (pivot path on expiry).

    Identical search to ``"pbr"``; the separate strategy makes the
    bounded-latency contract explicit — a missing limit is a caller bug,
    not an accidental unbounded search.
    """

    def route(
        self,
        engine: "RoutingEngine",
        query: RoutingQuery,
        *,
        time_limit_seconds: float | None = None,
        heuristic: OptimisticHeuristic | None = None,
    ) -> RoutingResult:
        if time_limit_seconds is None:
            raise ValueError("the 'anytime' strategy requires time_limit_seconds")
        return super().route(
            engine,
            query,
            time_limit_seconds=time_limit_seconds,
            heuristic=heuristic,
        )


@register_strategy("multi_budget")
class MultiBudgetStrategy(RoutingStrategy):
    """One source/target pair answered for a whole budget vector.

    A single label search serves every budget — the per-vertex Pareto
    frontiers, the optimistic heuristic and every convolution are shared —
    instead of re-running ``"pbr"`` once per budget.  Pass the vector as
    ``budgets=``; ``query.budget`` must be its maximum (use
    :meth:`RoutingEngine.route_multi_budget` to construct both together).
    """

    supports_time_limit = True

    def route(
        self,
        engine: "RoutingEngine",
        query: RoutingQuery,
        *,
        time_limit_seconds: float | None = None,
        budgets: Iterable[int] | None = None,
        heuristic: OptimisticHeuristic | None = None,
    ) -> MultiBudgetResult:
        if budgets is None:
            raise ValueError(
                "the 'multi_budget' strategy requires budgets=<tick vector>"
            )
        budget_vector = normalize_budgets(budgets)
        if budget_vector[-1] != query.budget:
            raise ValueError(
                "query.budget must equal max(budgets); use "
                "RoutingEngine.route_multi_budget to build both consistently"
            )
        return engine._search.route_multi_budget(
            query,
            budget_vector,
            time_limit_seconds=self.check_time_limit(time_limit_seconds),
            heuristic=heuristic,
        )


@register_strategy("kbest")
class KBestStrategy(RoutingStrategy):
    """Top-k non-dominated routes at the target (``k=...`` required).

    Same label search as ``"pbr"`` with the pivot pruning relaxed to the
    k-th best arrival, so the whole top of the target's Pareto frontier
    survives — alternatives a dispatcher can offer, not just the argmax.
    """

    supports_time_limit = True

    def route(
        self,
        engine: "RoutingEngine",
        query: RoutingQuery,
        *,
        time_limit_seconds: float | None = None,
        k: int | None = None,
        heuristic: OptimisticHeuristic | None = None,
    ) -> KBestResult:
        if k is None:
            raise ValueError("the 'kbest' strategy requires k=<positive int>")
        if isinstance(k, bool) or not isinstance(k, numbers.Integral) or k < 1:
            raise ValueError(f"k must be a positive integer, got {k!r}")
        return engine._search.route_kbest(
            query,
            int(k),
            time_limit_seconds=self.check_time_limit(time_limit_seconds),
            heuristic=heuristic,
        )


@register_strategy("depart_when")
class DepartWhenStrategy(RoutingStrategy):
    """Best budget-reliability over a departure window ("leave when?").

    Pass the candidate departures as ``departure_times=<seconds vector>``.
    Two modes:

    - **arrive-by** (``arrive_by_seconds=``): each departure's budget is
      the wall-clock window left until the deadline, floored onto the
      grid.  A later departure is just a smaller budget against the same
      cost table, so *one* shared multi-budget label search answers the
      whole window (``query.budget`` must equal the largest feasible
      budget; use :meth:`RoutingEngine.route_depart_when` to build both
      consistently).  Departures at or past the deadline are reported
      infeasible, not errors.
    - **fixed-budget** (no ``arrive_by_seconds``): every departure shares
      ``query.budget`` — the "any time in this window, same trip length"
      question.  Against one table all entries coincide; the mode earns
      its keep at the service layer, where each temporal regime in the
      window contributes its own table.
    """

    supports_time_limit = True

    def route(
        self,
        engine: "RoutingEngine",
        query: RoutingQuery,
        *,
        time_limit_seconds: float | None = None,
        departure_times: Iterable[float] | None = None,
        arrive_by_seconds: float | None = None,
        heuristic: OptimisticHeuristic | None = None,
    ) -> DepartWhenResult:
        if departure_times is None:
            raise ValueError(
                "the 'depart_when' strategy requires "
                "departure_times=<seconds vector>"
            )
        departures = normalize_departures(departure_times)
        limit = self.check_time_limit(time_limit_seconds)
        if arrive_by_seconds is None:
            budgets = (query.budget,) * len(departures)
        else:
            if (
                isinstance(arrive_by_seconds, bool)
                or not isinstance(arrive_by_seconds, numbers.Real)
                or not math.isfinite(arrive_by_seconds)
            ):
                raise ValueError(
                    f"arrive_by_seconds must be a finite number, got "
                    f"{arrive_by_seconds!r}"
                )
            budgets = tuple(
                budget_ticks_for_departure(
                    departure, arrive_by_seconds, engine.resolution
                )
                for departure in departures
            )
        feasible = sorted({b for b in budgets if b >= 1})
        if not feasible:
            raise ValueError(
                "every departure is at or past arrive_by_seconds; "
                "nothing to search"
            )
        if feasible[-1] != query.budget:
            raise ValueError(
                "query.budget must equal the largest feasible departure "
                "budget; use RoutingEngine.route_depart_when to build both "
                "consistently"
            )
        multi = engine._search.route_multi_budget(
            query,
            tuple(feasible),
            time_limit_seconds=limit,
            heuristic=heuristic,
        )
        results = tuple(
            multi.best_for(budget) if budget >= 1 else None for budget in budgets
        )
        return DepartWhenResult(
            query=query,
            departures=departures,
            budgets=budgets,
            results=results,
            arrive_by_seconds=(
                None if arrive_by_seconds is None else float(arrive_by_seconds)
            ),
            stats=multi.stats,
        )


@register_strategy("expected_time")
class ExpectedTimeStrategy(RoutingStrategy):
    """Baseline: deterministic shortest path over average travel times."""

    def route(
        self,
        engine: "RoutingEngine",
        query: RoutingQuery,
        *,
        time_limit_seconds: float | None = None,
    ) -> RoutingResult:
        self.check_time_limit(time_limit_seconds)
        return expected_time_path(engine.network, engine.combiner, query)


@register_strategy("oracle")
class OracleStrategy(RoutingStrategy):
    """Baseline: exhaustive enumeration of simple paths (small graphs only)."""

    def route(
        self,
        engine: "RoutingEngine",
        query: RoutingQuery,
        *,
        time_limit_seconds: float | None = None,
        max_edges: int = 12,
    ) -> RoutingResult:
        self.check_time_limit(time_limit_seconds)
        return exhaustive_best_path(
            engine.network, engine.combiner, query, max_edges=max_edges
        )


# ----------------------------------------------------------------------
# Batch results
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BatchResult:
    """Answers to one :meth:`RoutingEngine.route_many` call.

    ``results`` preserves the input query order; ``stats`` aggregates every
    member search (see :meth:`SearchStats.aggregate`).  A member is one of
    three distinct outcomes, and the counters keep them apart — a batch
    consumer must not read "no route exists" out of a query its strategy
    simply never answered:

    * a found answer (``result.found``) — counted by :attr:`num_found`;
    * a definitive miss (``result is not None and not result.found``, e.g.
      an unreachable target) — counted by :attr:`num_no_route`;
    * ``None`` — the strategy declined to answer (typically its wall-clock
      limit expired first) — counted by :attr:`num_unanswered`.
    """

    results: tuple[RoutingResult | MultiBudgetResult | KBestResult | None, ...]
    stats: SearchStats

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[StrategyAnswer]:
        return iter(self.results)

    def __getitem__(self, index: int) -> StrategyAnswer:
        return self.results[index]

    @property
    def num_found(self) -> int:
        """Members with a route."""
        return sum(
            1 for result in self.results if result is not None and result.found
        )

    @property
    def num_no_route(self) -> int:
        """Members whose strategy answered definitively: no route exists."""
        return sum(
            1 for result in self.results if result is not None and not result.found
        )

    @property
    def num_unanswered(self) -> int:
        """Members whose strategy returned no answer (e.g. time limit)."""
        return sum(1 for result in self.results if result is None)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation of the whole batch.

        Unanswered members serialise as ``null`` so the wire format keeps
        the found / no-route / unanswered distinction intact.
        """
        return {
            "kind": "batch",
            "results": [
                None if result is None else result.to_dict()
                for result in self.results
            ],
            "stats": self.stats.to_dict(),
            "num_found": self.num_found,
            "num_no_route": self.num_no_route,
            "num_unanswered": self.num_unanswered,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], network: RoadNetwork) -> "BatchResult":
        """Rebuild a batch against ``network``.

        ``null`` members come back as ``None`` (the outcome counters are
        derived properties, so the round trip preserves them for free).
        """
        return cls(
            results=tuple(
                None if item is None else result_from_dict(item, network)
                for item in data["results"]
            ),
            stats=SearchStats.from_dict(data.get("stats", {})),
        )


# ----------------------------------------------------------------------
# Worker-side machinery for route_many(workers=N)
# ----------------------------------------------------------------------

#: Per-process engine rebuilt by :func:`_worker_init`; lives for the pool's
#: lifetime so every shard served by one worker shares heuristic/CDF caches.
_WORKER_ENGINE: "RoutingEngine | None" = None


def _worker_init(payload: bytes) -> None:
    """Pool initializer: reconstruct the engine from its pickled spec."""
    global _WORKER_ENGINE
    network, combiner, pruning, backend, landmarks = pickle.loads(payload)
    _WORKER_ENGINE = RoutingEngine(
        network, combiner, pruning=pruning, backend=backend, landmarks=landmarks
    )


def _worker_route_shard(
    task: tuple[
        list[int], list[dict[str, int]], str, float | None, dict[str, Any]
    ],
) -> list[tuple[int, dict[str, Any] | None]]:
    """Serve one target-grouped shard inside a pool worker.

    Results travel back as ``to_dict`` documents (floats round-trip exactly
    through pickle) and are re-materialised against the parent's network, so
    parallel answers are identical to serial ones.
    """
    indices, query_dicts, strategy, time_limit_seconds, kwargs = task
    engine = _WORKER_ENGINE
    if engine is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker engine was never initialised")
    out: list[tuple[int, dict[str, Any] | None]] = []
    for index, query_dict in zip(indices, query_dicts):
        result = engine.route(
            RoutingQuery.from_dict(query_dict),
            strategy=strategy,
            time_limit_seconds=time_limit_seconds,
            **kwargs,
        )
        out.append((index, None if result is None else result.to_dict()))
    return out


# ----------------------------------------------------------------------
# The facade
# ----------------------------------------------------------------------


class RoutingEngine:
    """Unified entry point for PBR, anytime, baseline and batch routing.

    One engine per (network, combiner) pair; it is what a routing service
    instantiates once and serves all traffic through.  All strategies share
    the engine's search state, the combiner's per-edge cost memo, and the
    process-wide optimistic-heuristic LRU, so heavy traffic to popular
    destinations pays the per-target setup cost once.
    """

    def __init__(
        self,
        network: RoadNetwork,
        combiner: CostCombiner,
        *,
        pruning: PruningConfig | None = None,
        backend: str = "auto",
        landmarks: int | None = None,
    ) -> None:
        self.network = network
        self.combiner = combiner
        self.pruning = pruning or PruningConfig()
        #: Search-core selection (``"auto"`` / ``"scalar"`` / ``"columnar"``)
        #: and the optional ALT landmark count, forwarded to the search; see
        #: :class:`~repro.routing.budget._BudgetSearch` and PERFORMANCE.md
        #: "Columnar search core".
        self.backend = backend
        self.landmarks = landmarks
        self._search = _BudgetSearch(
            network,
            combiner,
            pruning=self.pruning,
            backend=backend,
            landmarks=landmarks,
        )
        self._strategies: dict[str, RoutingStrategy] = {}

    def __repr__(self) -> str:
        return (
            f"RoutingEngine(network={self.network!r}, "
            f"combiner={type(self.combiner).__name__})"
        )

    # ------------------------------------------------------------------
    # Query construction
    # ------------------------------------------------------------------

    @property
    def resolution(self) -> float:
        """Seconds per distribution grid tick (the cost table's resolution)."""
        return self.combiner.costs.resolution

    @property
    def cost_version(self) -> int:
        """The engine's cost table's mutation version.

        The serving layer keys its result cache on this value, so any
        ``set_cost`` / ``apply_deltas`` edit invalidates every cached answer
        by construction (new keys simply never match old entries) — no
        scanning, no registration protocol.

        Concurrency: the underlying table publishes its histograms and its
        version together in one atomic cell
        (:attr:`~repro.core.costs.EdgeCostTable.versioned`), so a version
        read here is a coherent snapshot tag — a request that reads it once
        up front, computes, and caches under it can never tag an answer
        with a version the costs it read did not belong to.  (Keeping the
        *whole computation* at that snapshot is the serving layer's job: it
        serialises ``apply_deltas`` against in-flight requests.)
        """
        return self.combiner.costs.version

    def query(self, source: int, target: int, budget: int) -> RoutingQuery:
        """Build a validated tick-budget query."""
        return RoutingQuery(source, target, budget)

    def query_from_seconds(
        self, source: int, target: int, budget_seconds: float
    ) -> RoutingQuery:
        """Build a query from a seconds budget on this engine's grid."""
        return RoutingQuery.from_seconds(
            source, target, budget_seconds, resolution=self.resolution
        )

    # ------------------------------------------------------------------
    # Strategies
    # ------------------------------------------------------------------

    def strategy(self, name: str) -> RoutingStrategy:
        """The (per-engine cached) strategy instance registered as ``name``.

        Safe under concurrent callers: two threads racing the first lookup
        may both construct an instance, but ``setdefault`` publishes exactly
        one and strategies are stateless policy objects, so the loser's
        instance is simply garbage.
        """
        instance = self._strategies.get(name)
        if instance is None:
            cls = _STRATEGIES.get(name)
            if cls is None:
                raise KeyError(
                    f"unknown routing strategy {name!r}; available: "
                    f"{', '.join(available_strategies())}"
                )
            instance = self._strategies.setdefault(name, cls())
        return instance

    def supports_time_limit(self, name: str) -> bool:
        """Whether strategy ``name`` honours ``time_limit_seconds``.

        The serving layer's degradation ladder keys off this: a strategy
        that can bound its own latency is run with the request's remaining
        deadline as a cooperative limit, while one that cannot is run as-is
        and only judged afterwards.  Unknown names raise, exactly like
        :meth:`strategy`.
        """
        return self.strategy(name).supports_time_limit

    def heuristic_for(self, target: int) -> OptimisticHeuristic:
        """The shared optimistic heuristic for ``target`` (LRU-cached)."""
        return OptimisticHeuristic.shared(self.network, self.combiner.costs, target)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def route(
        self,
        query: RoutingQuery,
        *,
        strategy: str = "pbr",
        time_limit_seconds: float | None = None,
        **kwargs: Any,
    ) -> StrategyAnswer:
        """Answer one query under ``strategy``.

        ``time_limit_seconds`` bounds the wall clock for strategies that
        support it (``"pbr"`` optionally, ``"anytime"`` mandatorily);
        strategy-specific options (e.g. the oracle's ``max_edges``, the
        multi-budget vector ``budgets``, the k-best ``k``) pass through
        ``kwargs``.  ``None`` means the strategy declined to answer — a
        different outcome than a result with ``found == False``.
        """
        return self.strategy(strategy).route(
            self, query, time_limit_seconds=time_limit_seconds, **kwargs
        )

    def route_multi_budget(
        self,
        source: int,
        target: int,
        budgets: Iterable[int],
        *,
        time_limit_seconds: float | None = None,
    ) -> MultiBudgetResult:
        """Answer one source/target pair for a whole budget vector.

        One label search serves every budget (the Pareto frontier work is
        shared instead of re-run per budget); per-budget answers match
        independent ``"pbr"`` runs.  ``budgets`` may arrive unsorted or with
        duplicates — it is normalised exactly like a single
        :attr:`RoutingQuery.budget`.
        """
        budget_vector = normalize_budgets(budgets)
        query = RoutingQuery(source, target, budget_vector[-1])
        return self.route(
            query,
            strategy="multi_budget",
            budgets=budget_vector,
            time_limit_seconds=time_limit_seconds,
        )

    def route_kbest(
        self,
        query: RoutingQuery,
        k: int,
        *,
        time_limit_seconds: float | None = None,
    ) -> KBestResult:
        """The top-``k`` non-dominated routes for ``query``, best first."""
        return self.route(
            query, strategy="kbest", k=k, time_limit_seconds=time_limit_seconds
        )

    def route_depart_when(
        self,
        source: int,
        target: int,
        departure_times: Iterable[float],
        *,
        budget: int | None = None,
        arrive_by_seconds: float | None = None,
        time_limit_seconds: float | None = None,
    ) -> DepartWhenResult:
        """Best budget-reliability over a departure window, in one search.

        Exactly one of ``budget`` (every departure gets the same tick
        budget) or ``arrive_by_seconds`` (each departure's budget is the
        remaining wall-clock window, floored onto the grid) must be given.
        One shared multi-budget label search answers every feasible
        departure; departures at or past the deadline come back infeasible
        (budget 0, ``None`` result).  Raises when *no* departure is
        feasible — an empty search would answer nothing.
        """
        if (budget is None) == (arrive_by_seconds is None):
            raise ValueError(
                "pass exactly one of budget= or arrive_by_seconds="
            )
        departures = normalize_departures(departure_times)
        if budget is not None:
            query = RoutingQuery(source, target, budget)
        else:
            if (
                isinstance(arrive_by_seconds, bool)
                or not isinstance(arrive_by_seconds, numbers.Real)
                or not math.isfinite(arrive_by_seconds)
            ):
                raise ValueError(
                    f"arrive_by_seconds must be a finite number, got "
                    f"{arrive_by_seconds!r}"
                )
            feasible = [
                ticks
                for departure in departures
                if (
                    ticks := budget_ticks_for_departure(
                        departure, arrive_by_seconds, self.resolution
                    )
                )
                >= 1
            ]
            if not feasible:
                raise ValueError(
                    "every departure is at or past arrive_by_seconds; "
                    "nothing to search"
                )
            query = RoutingQuery(source, target, max(feasible))
        return self.route(
            query,
            strategy="depart_when",
            departure_times=departures,
            arrive_by_seconds=arrive_by_seconds,
            time_limit_seconds=time_limit_seconds,
        )

    def route_many(
        self,
        queries: Iterable[RoutingQuery],
        *,
        strategy: str = "pbr",
        time_limit_seconds: float | None = None,
        workers: int | None = None,
        **kwargs: Any,
    ) -> BatchResult:
        """Answer a batch of queries, amortising shared caches across them.

        Queries are *processed* grouped by target — consecutive same-target
        searches hit the optimistic-heuristic LRU even when the batch spans
        more distinct targets than the LRU holds — but ``results`` preserves
        the input order.  ``time_limit_seconds`` applies per query, so a
        batch's worst-case latency is ``len(queries) * time_limit_seconds``;
        strategy-specific ``kwargs`` (e.g. the oracle's ``max_edges``) apply
        to every member, exactly as in :meth:`route`.  An empty batch
        returns zero results and zeroed aggregate stats.

        ``workers=N`` (N > 1) shards the batch across a ``multiprocessing``
        pool: whole target groups are packed onto workers (largest group
        first), so each reverse Dijkstra is built exactly once in exactly
        one process, and each worker reconstructs the engine from a pickled
        ``(network, combiner, pruning, backend, landmarks)`` spec.  Results are identical to the
        serial path — answers travel back as wire documents and are
        re-materialised against this engine's network — and ``stats`` sums
        the per-shard searches.  Custom strategies must be registered at
        import time to exist in spawned workers (forked workers inherit the
        parent registry either way).
        """
        query_list = list(queries)
        if workers is not None:
            if (
                isinstance(workers, bool)
                or not isinstance(workers, numbers.Integral)
                or workers < 1
            ):
                raise ValueError(
                    f"workers must be a positive integer, got {workers!r}"
                )
            workers = int(workers)
        if workers is not None and workers > 1 and len(query_list) > 1:
            results = self._route_many_parallel(
                query_list, workers, strategy, time_limit_seconds, kwargs
            )
        else:
            order = sorted(
                range(len(query_list)), key=lambda i: query_list[i].target
            )
            routed = {
                index: self.route(
                    query_list[index],
                    strategy=strategy,
                    time_limit_seconds=time_limit_seconds,
                    **kwargs,
                )
                for index in order
            }
            results = tuple(routed[index] for index in range(len(query_list)))
        return BatchResult(
            results=results,
            stats=SearchStats.aggregate(
                result.stats for result in results if result is not None
            ),
        )

    def _route_many_parallel(
        self,
        query_list: list[RoutingQuery],
        workers: int,
        strategy: str,
        time_limit_seconds: float | None,
        kwargs: dict[str, Any],
    ) -> tuple[StrategyAnswer, ...]:
        """Shard ``query_list`` by target across a worker pool.

        Shards never split a target group, preserving the heuristic-reuse
        guarantee per shard; groups are packed largest-first onto the least
        loaded shard so worker wall-clocks stay balanced.
        """
        groups: dict[int, list[int]] = {}
        for index, query in enumerate(query_list):
            groups.setdefault(query.target, []).append(index)
        num_shards = min(workers, len(groups))
        if num_shards < 2:
            # A single shard cannot parallelise anything; the pool would
            # only add spawn + pickle + wire-format overhead.
            return tuple(
                self.route(
                    query,
                    strategy=strategy,
                    time_limit_seconds=time_limit_seconds,
                    **kwargs,
                )
                for query in query_list
            )
        shards: list[list[int]] = [[] for _ in range(num_shards)]
        loads = [0] * num_shards
        for _, indices in sorted(
            groups.items(), key=lambda item: (-len(item[1]), item[0])
        ):
            lightest = loads.index(min(loads))
            shards[lightest].extend(indices)
            loads[lightest] += len(indices)
        tasks = [
            (
                shard,
                [query_list[i].to_dict() for i in shard],
                strategy,
                time_limit_seconds,
                kwargs,
            )
            for shard in shards
        ]
        spec = pickle.dumps(
            (self.network, self.combiner, self.pruning, self.backend, self.landmarks),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        results: list[StrategyAnswer] = [None] * len(query_list)
        context = multiprocessing.get_context()
        with context.Pool(
            processes=num_shards, initializer=_worker_init, initargs=(spec,)
        ) as pool:
            for shard_answers in pool.map(_worker_route_shard, tasks):
                for index, document in shard_answers:
                    if document is not None:
                        results[index] = result_from_dict(document, self.network)
        return tuple(results)

    def route_stream(
        self,
        query: RoutingQuery,
        time_limits: Sequence[float],
    ) -> Iterator[RoutingResult]:
        """Yield improving anytime pivots over ascending wall-clock limits.

        Each yielded result is what a caller granting at most that limit
        would have received; because each run is an independent
        deterministic search, later (larger) limits never yield a worse
        pivot.  ``time_limits`` must be strictly increasing and positive —
        a non-increasing sweep would re-spend wall clock for answers the
        stream already delivered, so it is rejected (at the call site, not
        on first iteration) as a caller bug.  One optimistic heuristic is
        built up front and shared by every run so the stream measures
        search time, not repeated reverse Dijkstras.
        """
        limits = [float(limit) for limit in time_limits]
        if any(not math.isfinite(limit) or limit <= 0 for limit in limits):
            raise ValueError("route_stream time limits must be positive and finite")
        if any(b <= a for a, b in zip(limits, limits[1:])):
            raise ValueError(
                "route_stream time limits must be strictly increasing; "
                "sort/deduplicate the sweep before streaming"
            )

        def stream() -> Iterator[RoutingResult]:
            heuristic = self.heuristic_for(query.target)
            for limit in limits:
                yield self._search.route(
                    query, time_limit_seconds=limit, heuristic=heuristic
                )

        return stream()

    # ------------------------------------------------------------------
    # Serialisation convenience
    # ------------------------------------------------------------------

    def result_from_dict(
        self, data: Mapping[str, Any]
    ) -> RoutingResult | MultiBudgetResult | KBestResult | BatchResult:
        """Rebuild any serialised answer against this engine's network.

        Dispatches on the payload's ``kind`` tag (``"route"`` /
        ``"multi_budget"`` / ``"kbest"`` / ``"batch"``; untagged payloads
        are plain results).
        """
        return result_from_dict(data, self.network)
