"""Estimator interfaces for the from-scratch ML stack.

No ML framework ships in the offline environment, so the hybrid model's
learners (distribution-estimation MLP, dependence classifier) are built on a
small NumPy stack with a scikit-learn-style ``fit`` / ``predict`` contract.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["Estimator", "Classifier", "Regressor", "check_2d", "check_fitted"]


def check_2d(X: np.ndarray, *, name: str = "X") -> np.ndarray:
    """Validate and convert a feature matrix to float64 2-D."""
    arr = np.asarray(X, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite values")
    return arr


def check_fitted(estimator: "Estimator") -> None:
    """Raise when ``fit`` has not been called yet."""
    if not getattr(estimator, "_fitted", False):
        raise RuntimeError(f"{type(estimator).__name__} is not fitted; call fit() first")


class Estimator(abc.ABC):
    """Base class: ``fit`` returns ``self``; predict-style calls require fit."""

    _fitted: bool = False

    @abc.abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray) -> "Estimator":
        """Train on features ``X`` (n, d) and targets ``y``."""


class Classifier(Estimator):
    """A classifier additionally exposes class probabilities."""

    @abc.abstractmethod
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-probability matrix of shape (n, num_classes)."""

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most probable class label per row."""
        return np.argmax(self.predict_proba(X), axis=1)


class Regressor(Estimator):
    """A regressor predicts real-valued targets (possibly vector-valued)."""

    @abc.abstractmethod
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted targets, shape (n,) or (n, k)."""
