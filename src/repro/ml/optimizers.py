"""Gradient-descent optimizers for the NumPy ML stack."""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["Optimizer", "Sgd", "Momentum", "Adam"]


class Optimizer(abc.ABC):
    """Updates a list of parameter arrays in place from matching gradients."""

    @abc.abstractmethod
    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        """Apply one update; ``params[i]`` is modified in place."""

    def reset(self) -> None:
        """Clear accumulated state (between training runs)."""


class Sgd(Optimizer):
    """Plain stochastic gradient descent."""

    def __init__(self, learning_rate: float = 0.01) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = learning_rate

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        for p, g in zip(params, grads):
            p -= self.learning_rate * g


class Momentum(Optimizer):
    """SGD with classical momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.9) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: list[np.ndarray] | None = None

    def reset(self) -> None:
        self._velocity = None

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if self._velocity is None:
            self._velocity = [np.zeros_like(p) for p in params]
        for p, g, v in zip(params, grads, self._velocity):
            v *= self.momentum
            v -= self.learning_rate * g
            p += v


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: list[np.ndarray] | None = None
        self._v: list[np.ndarray] | None = None
        self._t = 0

    def reset(self) -> None:
        self._m = None
        self._v = None
        self._t = 0

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if self._m is None or self._v is None:
            self._m = [np.zeros_like(p) for p in params]
            self._v = [np.zeros_like(p) for p in params]
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, g, m, v in zip(params, grads, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * (g * g)
            p -= self.learning_rate * (m / bias1) / (np.sqrt(v / bias2) + self.epsilon)
