"""Multilayer perceptron with manual backpropagation.

Two heads are provided:

* :class:`MlpDistributionRegressor` — softmax output trained with soft-target
  cross-entropy; this is the paper's *distribution estimation model*: input
  features of an edge pair (or virtual-edge/edge pair), output a probability
  vector over travel-time delay bins.
* :class:`MlpClassifier` — the same network with class-index targets, used as
  an alternative dependence classifier.

Implementation notes: dense layers with ReLU or tanh, He/Xavier
initialisation from an explicit seed, minibatch training with any
:mod:`repro.ml.optimizers` optimizer, optional L2 regularisation and early
stopping on a validation split.  Gradients are verified against finite
differences in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import Classifier, Regressor, check_2d, check_fitted
from .losses import cross_entropy_from_logits, cross_entropy_gradient, softmax
from .optimizers import Adam, Optimizer

__all__ = ["MlpConfig", "MlpNetwork", "MlpDistributionRegressor", "MlpClassifier"]


@dataclass(frozen=True)
class MlpConfig:
    """Architecture and training hyper-parameters."""

    hidden_sizes: tuple[int, ...] = (64, 64)
    activation: str = "relu"
    learning_rate: float = 1e-3
    batch_size: int = 64
    max_epochs: int = 200
    l2: float = 1e-5
    early_stopping_patience: int = 20
    validation_fraction: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if any(h < 1 for h in self.hidden_sizes):
            raise ValueError("hidden sizes must be >= 1")
        if self.activation not in ("relu", "tanh"):
            raise ValueError(f"unknown activation {self.activation!r}")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.max_epochs < 1:
            raise ValueError("max_epochs must be >= 1")
        if self.l2 < 0:
            raise ValueError("l2 must be non-negative")
        if not 0.0 <= self.validation_fraction < 1.0:
            raise ValueError("validation_fraction must be in [0, 1)")


class MlpNetwork:
    """The bare network: parameters, forward pass, and backprop."""

    def __init__(
        self,
        input_size: int,
        hidden_sizes: tuple[int, ...],
        output_size: int,
        *,
        activation: str = "relu",
        seed: int = 0,
    ) -> None:
        if input_size < 1 or output_size < 1:
            raise ValueError("input and output sizes must be >= 1")
        self.activation = activation
        rng = np.random.default_rng(seed)
        sizes = (input_size, *hidden_sizes, output_size)
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(sizes, sizes[1:]):
            if activation == "relu":
                scale = np.sqrt(2.0 / fan_in)  # He initialisation
            else:
                scale = np.sqrt(1.0 / fan_in)  # Xavier-ish for tanh
            self.weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))

    @property
    def parameters(self) -> list[np.ndarray]:
        return [*self.weights, *self.biases]

    def _act(self, z: np.ndarray) -> np.ndarray:
        if self.activation == "relu":
            return np.maximum(z, 0.0)
        return np.tanh(z)

    def _act_grad(self, z: np.ndarray, a: np.ndarray) -> np.ndarray:
        if self.activation == "relu":
            return (z > 0.0).astype(np.float64)
        return 1.0 - a * a

    def forward(self, X: np.ndarray) -> tuple[np.ndarray, list[np.ndarray], list[np.ndarray]]:
        """Return ``(logits, pre_activations, activations)`` for backprop."""
        pre: list[np.ndarray] = []
        act: list[np.ndarray] = [X]
        h = X
        last = len(self.weights) - 1
        for layer, (W, b) in enumerate(zip(self.weights, self.biases)):
            z = h @ W + b
            pre.append(z)
            h = z if layer == last else self._act(z)
            act.append(h)
        return act[-1], pre, act

    def predict_logits(self, X: np.ndarray) -> np.ndarray:
        logits, _, _ = self.forward(X)
        return logits

    def backward(
        self,
        logit_grad: np.ndarray,
        pre: list[np.ndarray],
        act: list[np.ndarray],
        *,
        l2: float = 0.0,
    ) -> list[np.ndarray]:
        """Backprop a gradient at the logits into parameter gradients.

        Returns gradients aligned with :attr:`parameters`
        (weights first, then biases).
        """
        weight_grads: list[np.ndarray] = [np.empty(0)] * len(self.weights)
        bias_grads: list[np.ndarray] = [np.empty(0)] * len(self.biases)
        delta = logit_grad
        for layer in range(len(self.weights) - 1, -1, -1):
            weight_grads[layer] = act[layer].T @ delta + l2 * self.weights[layer]
            bias_grads[layer] = delta.sum(axis=0)
            if layer > 0:
                delta = (delta @ self.weights[layer].T) * self._act_grad(
                    pre[layer - 1], act[layer]
                )
        return [*weight_grads, *bias_grads]


class _MlpBase:
    """Shared minibatch training loop for both heads."""

    def __init__(self, config: MlpConfig | None = None, *, optimizer: Optimizer | None = None) -> None:
        self.config = config or MlpConfig()
        self._optimizer = optimizer
        self.network: MlpNetwork | None = None
        self.history_: list[float] = []
        self._fitted = False

    def _train(self, X: np.ndarray, targets: np.ndarray, output_size: int) -> None:
        config = self.config
        rng = np.random.default_rng(config.seed)
        self.network = MlpNetwork(
            X.shape[1],
            config.hidden_sizes,
            output_size,
            activation=config.activation,
            seed=config.seed,
        )
        optimizer = self._optimizer or Adam(learning_rate=config.learning_rate)
        optimizer.reset()

        n = X.shape[0]
        if config.validation_fraction > 0.0 and n >= 10:
            num_val = max(1, int(round(n * config.validation_fraction)))
            order = rng.permutation(n)
            val_idx, train_idx = order[:num_val], order[num_val:]
            X_train, T_train = X[train_idx], targets[train_idx]
            X_val, T_val = X[val_idx], targets[val_idx]
        else:
            X_train, T_train = X, targets
            X_val = T_val = None

        best_val = np.inf
        best_params: list[np.ndarray] | None = None
        patience = 0
        self.history_ = []
        for _ in range(config.max_epochs):
            order = rng.permutation(X_train.shape[0])
            for start in range(0, X_train.shape[0], config.batch_size):
                batch = order[start : start + config.batch_size]
                logits, pre, act = self.network.forward(X_train[batch])
                grad = cross_entropy_gradient(logits, T_train[batch])
                grads = self.network.backward(grad, pre, act, l2=config.l2)
                optimizer.step(self.network.parameters, grads)
            if X_val is not None:
                val_loss = cross_entropy_from_logits(
                    self.network.predict_logits(X_val), T_val
                )
                self.history_.append(val_loss)
                if val_loss < best_val - 1e-6:
                    best_val = val_loss
                    best_params = [p.copy() for p in self.network.parameters]
                    patience = 0
                else:
                    patience += 1
                    if patience >= config.early_stopping_patience:
                        break
            else:
                self.history_.append(
                    cross_entropy_from_logits(
                        self.network.predict_logits(X_train), T_train
                    )
                )
        if best_params is not None:
            for current, best in zip(self.network.parameters, best_params):
                current[...] = best
        self._fitted = True


class MlpDistributionRegressor(_MlpBase, Regressor):
    """Softmax MLP trained against soft target distributions.

    ``fit(X, Y)`` takes target rows that are probability vectors; ``predict``
    returns predicted probability vectors (rows sum to 1).
    """

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MlpDistributionRegressor":
        X = check_2d(X)
        Y = check_2d(y, name="y")
        if X.shape[0] != Y.shape[0]:
            raise ValueError("X and y must have the same number of rows")
        if np.any(Y < 0):
            raise ValueError("target distributions must be non-negative")
        sums = Y.sum(axis=1)
        if np.any(np.abs(sums - 1.0) > 1e-6):
            raise ValueError("target rows must sum to 1")
        self._train(X, Y, Y.shape[1])
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self)
        assert self.network is not None
        return softmax(self.network.predict_logits(check_2d(X)))


class MlpClassifier(_MlpBase, Classifier):
    """Softmax MLP classifier over integer class labels."""

    def __init__(self, config: MlpConfig | None = None, *, optimizer: Optimizer | None = None) -> None:
        super().__init__(config, optimizer=optimizer)
        self.num_classes_: int | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MlpClassifier":
        X = check_2d(X)
        labels = np.asarray(y, dtype=np.int64).ravel()
        if labels.size != X.shape[0]:
            raise ValueError("X and y must have the same number of rows")
        if labels.min() < 0:
            raise ValueError("labels must be non-negative integers")
        self.num_classes_ = int(labels.max()) + 1
        onehot = np.zeros((labels.size, self.num_classes_), dtype=np.float64)
        onehot[np.arange(labels.size), labels] = 1.0
        self._train(X, onehot, self.num_classes_)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self)
        assert self.network is not None
        return softmax(self.network.predict_logits(check_2d(X)))
