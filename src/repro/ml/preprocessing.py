"""Feature preprocessing: standardisation and categorical encoding."""

from __future__ import annotations

import numpy as np

from .base import check_2d

__all__ = ["StandardScaler", "OneHotEncoder"]


class StandardScaler:
    """Zero-mean / unit-variance feature scaling.

    Constant features get a scale of 1 so transforming them is a no-op
    (instead of dividing by zero).
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = check_2d(X)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std < 1e-12] = 1.0
        self.scale_ = std
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler is not fitted")
        X = check_2d(X)
        if X.shape[1] != self.mean_.size:
            raise ValueError(
                f"expected {self.mean_.size} features, got {X.shape[1]}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler is not fitted")
        X = check_2d(X)
        return X * self.scale_ + self.mean_


class OneHotEncoder:
    """One-hot encoding of an integer/str categorical column.

    Unknown categories at transform time map to the all-zero vector (rather
    than erroring), since routing-time queries may touch road categories the
    training pairs never covered.
    """

    def __init__(self) -> None:
        self.categories_: list | None = None
        self._index: dict | None = None

    def fit(self, values: np.ndarray) -> "OneHotEncoder":
        arr = np.asarray(values).ravel()
        self.categories_ = sorted(set(arr.tolist()))
        self._index = {c: i for i, c in enumerate(self.categories_)}
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        if self._index is None or self.categories_ is None:
            raise RuntimeError("OneHotEncoder is not fitted")
        arr = np.asarray(values).ravel()
        out = np.zeros((arr.size, len(self.categories_)), dtype=np.float64)
        for row, value in enumerate(arr.tolist()):
            column = self._index.get(value)
            if column is not None:
                out[row, column] = 1.0
        return out

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)
