"""CART decision trees (classification and regression).

Greedy binary splitting on thresholded numeric features — Gini impurity for
classification, variance reduction for regression.  Splits scan sorted unique
values with prefix-sum statistics, so fitting is ``O(d · n log n)`` per node.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import Classifier, Regressor, check_2d, check_fitted

__all__ = ["DecisionTreeClassifier", "DecisionTreeRegressor"]


@dataclass
class _Node:
    """Internal tree node (leaf when ``feature`` is None)."""

    feature: int | None = None
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    value: np.ndarray | None = None  # class distribution or mean target
    num_samples: int = 0


def _best_split_gini(
    X: np.ndarray, labels: np.ndarray, num_classes: int, feature_indices: np.ndarray
) -> tuple[int, float, float] | None:
    """Best ``(feature, threshold, impurity_decrease)`` under Gini, or None."""
    n = labels.size
    counts = np.bincount(labels, minlength=num_classes).astype(np.float64)
    parent_gini = 1.0 - ((counts / n) ** 2).sum()
    best: tuple[int, float, float] | None = None
    for feature in feature_indices:
        order = np.argsort(X[:, feature], kind="mergesort")
        xs = X[order, feature]
        ys = labels[order]
        left = np.zeros(num_classes)
        right = counts.copy()
        for i in range(n - 1):
            c = ys[i]
            left[c] += 1.0
            right[c] -= 1.0
            if xs[i + 1] <= xs[i] + 1e-12:
                continue
            nl, nr = i + 1.0, n - i - 1.0
            gini_l = 1.0 - ((left / nl) ** 2).sum()
            gini_r = 1.0 - ((right / nr) ** 2).sum()
            decrease = parent_gini - (nl * gini_l + nr * gini_r) / n
            if best is None or decrease > best[2]:
                best = (int(feature), float((xs[i] + xs[i + 1]) / 2.0), float(decrease))
    return best


def _best_split_variance(
    X: np.ndarray, y: np.ndarray, feature_indices: np.ndarray
) -> tuple[int, float, float] | None:
    """Best ``(feature, threshold, variance_decrease)``, or None."""
    n = y.size
    parent_var = float(y.var())
    best: tuple[int, float, float] | None = None
    for feature in feature_indices:
        order = np.argsort(X[:, feature], kind="mergesort")
        xs = X[order, feature]
        ys = y[order]
        prefix = np.cumsum(ys)
        prefix_sq = np.cumsum(ys * ys)
        total, total_sq = prefix[-1], prefix_sq[-1]
        for i in range(n - 1):
            if xs[i + 1] <= xs[i] + 1e-12:
                continue
            nl, nr = i + 1.0, n - i - 1.0
            var_l = prefix_sq[i] / nl - (prefix[i] / nl) ** 2
            var_r = (total_sq - prefix_sq[i]) / nr - ((total - prefix[i]) / nr) ** 2
            decrease = parent_var - (nl * var_l + nr * var_r) / n
            if best is None or decrease > best[2]:
                best = (int(feature), float((xs[i] + xs[i + 1]) / 2.0), float(decrease))
    return best


class _TreeBase:
    """Shared growth logic; subclasses define leaf values and split scoring."""

    def __init__(
        self,
        *,
        max_depth: int = 8,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        seed: int = 0,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self._root: _Node | None = None
        self._rng = np.random.default_rng(seed)
        self._fitted = False

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _find_split(self, X: np.ndarray, y: np.ndarray, features: np.ndarray):
        raise NotImplementedError

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=self._leaf_value(y), num_samples=y.shape[0])
        if depth >= self.max_depth or y.shape[0] < self.min_samples_split:
            return node
        num_features = X.shape[1]
        if self.max_features is not None and self.max_features < num_features:
            features = self._rng.choice(num_features, size=self.max_features, replace=False)
        else:
            features = np.arange(num_features)
        split = self._find_split(X, y, features)
        if split is None or split[2] <= 1e-12:
            return node
        feature, threshold, _ = split
        mask = X[:, feature] <= threshold
        if mask.sum() < self.min_samples_leaf or (~mask).sum() < self.min_samples_leaf:
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], depth + 1)
        return node

    def _predict_row(self, row: np.ndarray) -> np.ndarray:
        node = self._root
        assert node is not None
        while node.feature is not None:
            node = node.left if row[node.feature] <= node.threshold else node.right
            assert node is not None
        assert node.value is not None
        return node.value

    @property
    def depth(self) -> int:
        """Actual depth of the grown tree (0 = single leaf)."""
        def walk(node: _Node | None) -> int:
            if node is None or node.feature is None:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        check_fitted(self)  # type: ignore[arg-type]
        return walk(self._root)

    @property
    def num_leaves(self) -> int:
        def walk(node: _Node | None) -> int:
            if node is None:
                return 0
            if node.feature is None:
                return 1
            return walk(node.left) + walk(node.right)

        check_fitted(self)  # type: ignore[arg-type]
        return walk(self._root)


class DecisionTreeClassifier(_TreeBase, Classifier):
    """CART classifier with Gini splitting."""

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.num_classes_: int | None = None

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        assert self.num_classes_ is not None
        counts = np.bincount(y, minlength=self.num_classes_).astype(np.float64)
        return counts / counts.sum()

    def _find_split(self, X: np.ndarray, y: np.ndarray, features: np.ndarray):
        assert self.num_classes_ is not None
        return _best_split_gini(X, y, self.num_classes_, features)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        X = check_2d(X)
        labels = np.asarray(y, dtype=np.int64).ravel()
        if labels.size != X.shape[0]:
            raise ValueError("X and y must have the same number of rows")
        if labels.min() < 0:
            raise ValueError("labels must be non-negative")
        self.num_classes_ = int(labels.max()) + 1
        self._rng = np.random.default_rng(self.seed)
        self._root = self._grow(X, labels, depth=0)
        self._fitted = True
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self)
        X = check_2d(X)
        return np.vstack([self._predict_row(row) for row in X])


class DecisionTreeRegressor(_TreeBase, Regressor):
    """CART regressor with variance-reduction splitting."""

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        return np.asarray([float(y.mean())])

    def _find_split(self, X: np.ndarray, y: np.ndarray, features: np.ndarray):
        return _best_split_variance(X, y, features)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        X = check_2d(X)
        y = np.asarray(y, dtype=np.float64).ravel()
        if y.size != X.shape[0]:
            raise ValueError("X and y must have the same number of rows")
        self._rng = np.random.default_rng(self.seed)
        self._root = self._grow(X, y, depth=0)
        self._fitted = True
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self)
        X = check_2d(X)
        return np.asarray([float(self._predict_row(row)[0]) for row in X])
