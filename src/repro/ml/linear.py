"""Linear models: ridge regression and logistic regression.

Logistic regression is the default *dependence classifier* of the hybrid
model (a small, fast, well-calibrated baseline); ridge regression supports
diagnostics and tests.
"""

from __future__ import annotations

import numpy as np

from .base import Classifier, Regressor, check_2d, check_fitted
from .losses import binary_cross_entropy

__all__ = ["RidgeRegression", "LogisticRegression"]


class RidgeRegression(Regressor):
    """Closed-form L2-regularised least squares (intercept unpenalised)."""

    def __init__(self, *, alpha: float = 1.0) -> None:
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RidgeRegression":
        X = check_2d(X)
        y = np.asarray(y, dtype=np.float64).ravel()
        if y.size != X.shape[0]:
            raise ValueError("X and y must have the same number of rows")
        n, d = X.shape
        Xb = np.hstack([X, np.ones((n, 1))])
        penalty = self.alpha * np.eye(d + 1)
        penalty[-1, -1] = 0.0  # do not penalise the intercept
        theta = np.linalg.solve(Xb.T @ Xb + penalty, Xb.T @ y)
        self.coef_ = theta[:-1]
        self.intercept_ = float(theta[-1])
        self._fitted = True
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self)
        assert self.coef_ is not None
        return check_2d(X) @ self.coef_ + self.intercept_


class LogisticRegression(Classifier):
    """Binary logistic regression trained by full-batch gradient descent.

    Deterministic (no minibatch shuffling), with L2 regularisation and a
    step-halving line search on the regularised loss, so convergence is
    monotone — important because the dependence classifier is retrained in
    every experiment run and must not be seed-sensitive.
    """

    def __init__(
        self,
        *,
        l2: float = 1e-3,
        learning_rate: float = 1.0,
        max_iter: int = 500,
        tol: float = 1e-7,
    ) -> None:
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        self.l2 = l2
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.tol = tol
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.history_: list[float] = []

    @staticmethod
    def _sigmoid(z: np.ndarray) -> np.ndarray:
        out = np.empty_like(z)
        positive = z >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
        ez = np.exp(z[~positive])
        out[~positive] = ez / (1.0 + ez)
        return out

    def _loss(self, X: np.ndarray, y: np.ndarray, w: np.ndarray, b: float) -> float:
        probs = self._sigmoid(X @ w + b)
        return binary_cross_entropy(probs, y) + 0.5 * self.l2 * float(w @ w)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        X = check_2d(X)
        y = np.asarray(y, dtype=np.float64).ravel()
        if y.size != X.shape[0]:
            raise ValueError("X and y must have the same number of rows")
        if not np.all((y == 0.0) | (y == 1.0)):
            raise ValueError("labels must be binary 0/1")
        n, d = X.shape
        w = np.zeros(d)
        b = 0.0
        self.history_ = []
        loss = self._loss(X, y, w, b)
        for _ in range(self.max_iter):
            probs = self._sigmoid(X @ w + b)
            grad_w = X.T @ (probs - y) / n + self.l2 * w
            grad_b = float((probs - y).mean())
            step = self.learning_rate
            # Backtracking line search keeps the iteration monotone.
            for _ in range(30):
                w_new = w - step * grad_w
                b_new = b - step * grad_b
                new_loss = self._loss(X, y, w_new, b_new)
                if new_loss <= loss:
                    break
                step *= 0.5
            else:
                break
            improvement = loss - new_loss
            w, b, loss = w_new, b_new, new_loss
            self.history_.append(loss)
            if improvement < self.tol:
                break
        self.coef_ = w
        self.intercept_ = b
        self._fitted = True
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw logits ``Xw + b``."""
        check_fitted(self)
        assert self.coef_ is not None
        return check_2d(X) @ self.coef_ + self.intercept_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        p1 = self._sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - p1, p1])
