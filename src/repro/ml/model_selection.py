"""Dataset splitting utilities (train/test split, k-fold)."""

from __future__ import annotations

from typing import Iterator, Sequence, TypeVar

import numpy as np

__all__ = ["train_test_split_indices", "train_test_split", "kfold_indices"]

T = TypeVar("T")


def train_test_split_indices(
    n: int, *, test_fraction: float = 0.2, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Shuffled ``(train_idx, test_idx)`` index arrays.

    Both sides are guaranteed non-empty for ``n >= 2``.
    """
    if n < 2:
        raise ValueError("need at least two samples to split")
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    num_test = min(max(1, int(round(n * test_fraction))), n - 1)
    return order[num_test:], order[:num_test]


def train_test_split(
    items: Sequence[T], *, test_fraction: float = 0.2, seed: int = 0
) -> tuple[list[T], list[T]]:
    """Split any sequence into shuffled train/test lists."""
    train_idx, test_idx = train_test_split_indices(
        len(items), test_fraction=test_fraction, seed=seed
    )
    return [items[i] for i in train_idx], [items[i] for i in test_idx]


def kfold_indices(
    n: int, *, folds: int = 5, seed: int = 0
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(train_idx, validation_idx)`` for each of ``folds`` folds."""
    if folds < 2:
        raise ValueError("folds must be >= 2")
    if n < folds:
        raise ValueError(f"cannot split {n} samples into {folds} folds")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    sizes = np.full(folds, n // folds)
    sizes[: n % folds] += 1
    start = 0
    for size in sizes:
        validation = order[start : start + size]
        train = np.concatenate([order[:start], order[start + size :]])
        yield train, validation
        start += size
