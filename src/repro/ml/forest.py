"""Random forest on top of the CART trees.

Bootstrap-aggregated trees with per-node feature subsampling — the stronger
alternative dependence classifier when intersections need non-linear decision
boundaries.
"""

from __future__ import annotations

import math

import numpy as np

from .base import Classifier, Regressor, check_2d, check_fitted
from .tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = ["RandomForestClassifier", "RandomForestRegressor"]


class RandomForestClassifier(Classifier):
    """Bagged CART classifiers, probability-averaged."""

    def __init__(
        self,
        *,
        num_trees: int = 25,
        max_depth: int = 8,
        min_samples_leaf: int = 1,
        max_features: int | str | None = "sqrt",
        seed: int = 0,
    ) -> None:
        if num_trees < 1:
            raise ValueError("num_trees must be >= 1")
        self.num_trees = num_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.trees_: list[DecisionTreeClassifier] = []
        self.num_classes_: int | None = None

    def _resolve_max_features(self, num_features: int) -> int | None:
        if self.max_features is None:
            return None
        if self.max_features == "sqrt":
            return max(1, int(math.sqrt(num_features)))
        return int(self.max_features)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X = check_2d(X)
        labels = np.asarray(y, dtype=np.int64).ravel()
        if labels.size != X.shape[0]:
            raise ValueError("X and y must have the same number of rows")
        self.num_classes_ = int(labels.max()) + 1
        rng = np.random.default_rng(self.seed)
        max_features = self._resolve_max_features(X.shape[1])
        self.trees_ = []
        n = X.shape[0]
        for t in range(self.num_trees):
            idx = rng.integers(0, n, size=n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            # A bootstrap sample can miss the highest class; the tree's
            # probability rows are then narrower and predict_proba pads them.
            tree.fit(X[idx], labels[idx])
            self.trees_.append(tree)
        self._fitted = True
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self)
        assert self.num_classes_ is not None
        X = check_2d(X)
        out = np.zeros((X.shape[0], self.num_classes_))
        for tree in self.trees_:
            probs = tree.predict_proba(X)
            out[:, : probs.shape[1]] += probs
        return out / len(self.trees_)


class RandomForestRegressor(Regressor):
    """Bagged CART regressors, mean-averaged."""

    def __init__(
        self,
        *,
        num_trees: int = 25,
        max_depth: int = 8,
        min_samples_leaf: int = 1,
        max_features: int | str | None = "sqrt",
        seed: int = 0,
    ) -> None:
        if num_trees < 1:
            raise ValueError("num_trees must be >= 1")
        self.num_trees = num_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.trees_: list[DecisionTreeRegressor] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        X = check_2d(X)
        y = np.asarray(y, dtype=np.float64).ravel()
        if y.size != X.shape[0]:
            raise ValueError("X and y must have the same number of rows")
        rng = np.random.default_rng(self.seed)
        if self.max_features == "sqrt":
            max_features: int | None = max(1, int(math.sqrt(X.shape[1])))
        else:
            max_features = self.max_features  # type: ignore[assignment]
        self.trees_ = []
        n = X.shape[0]
        for _ in range(self.num_trees):
            idx = rng.integers(0, n, size=n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[idx], y[idx])
            self.trees_.append(tree)
        self._fitted = True
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self)
        X = check_2d(X)
        out = np.zeros(X.shape[0])
        for tree in self.trees_:
            out += tree.predict(X)
        return out / len(self.trees_)
