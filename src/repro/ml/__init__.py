"""From-scratch NumPy ML stack.

MLP with softmax distribution head (the paper's estimation model backbone),
logistic regression / decision trees / random forests (dependence-classifier
candidates), losses, optimizers, preprocessing, metrics and model selection.
"""

from .base import Classifier, Estimator, Regressor
from .forest import RandomForestClassifier, RandomForestRegressor
from .linear import LogisticRegression, RidgeRegression
from .losses import (
    binary_cross_entropy,
    cross_entropy_from_logits,
    cross_entropy_gradient,
    log_softmax,
    mse,
    softmax,
)
from .metrics import (
    accuracy,
    brier_score,
    confusion_matrix,
    f1_score,
    log_loss,
    mean_kl_to_targets,
    precision,
    recall,
)
from .mlp import MlpClassifier, MlpConfig, MlpDistributionRegressor, MlpNetwork
from .model_selection import kfold_indices, train_test_split, train_test_split_indices
from .optimizers import Adam, Momentum, Optimizer, Sgd
from .preprocessing import OneHotEncoder, StandardScaler
from .tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = [
    "Adam",
    "Classifier",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "Estimator",
    "LogisticRegression",
    "MlpClassifier",
    "MlpConfig",
    "MlpDistributionRegressor",
    "MlpNetwork",
    "Momentum",
    "OneHotEncoder",
    "Optimizer",
    "RandomForestClassifier",
    "RandomForestRegressor",
    "Regressor",
    "RidgeRegression",
    "Sgd",
    "StandardScaler",
    "accuracy",
    "binary_cross_entropy",
    "brier_score",
    "confusion_matrix",
    "cross_entropy_from_logits",
    "cross_entropy_gradient",
    "f1_score",
    "kfold_indices",
    "log_loss",
    "log_softmax",
    "mean_kl_to_targets",
    "mse",
    "precision",
    "recall",
    "softmax",
    "train_test_split",
    "train_test_split_indices",
]
