"""Training losses with analytic gradients.

The distribution-estimation model is trained to match target histograms, so
its loss is cross-entropy between a *soft* target distribution and the
softmax output — minimising it is equivalent to minimising
``KL(target || prediction)``, the paper's evaluation metric.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy_from_logits",
    "cross_entropy_gradient",
    "binary_cross_entropy",
    "binary_cross_entropy_gradient",
    "mse",
    "mse_gradient",
]

_EPS = 1e-12


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, numerically stabilised."""
    z = logits - logits.max(axis=-1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=-1, keepdims=True)


def log_softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise log-softmax, numerically stabilised."""
    z = logits - logits.max(axis=-1, keepdims=True)
    return z - np.log(np.exp(z).sum(axis=-1, keepdims=True))


def cross_entropy_from_logits(logits: np.ndarray, targets: np.ndarray) -> float:
    """Mean soft-target cross-entropy ``-sum_k t_k log softmax(z)_k``.

    ``targets`` rows are probability vectors (the per-pair ground-truth delay
    profiles), not class indices.
    """
    if logits.shape != targets.shape:
        raise ValueError(f"shape mismatch: {logits.shape} vs {targets.shape}")
    return float(-(targets * log_softmax(logits)).sum(axis=-1).mean())


def cross_entropy_gradient(logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Gradient of :func:`cross_entropy_from_logits` w.r.t. the logits.

    The classic ``softmax - target`` form, divided by the batch size because
    the loss is a mean.
    """
    if logits.shape != targets.shape:
        raise ValueError(f"shape mismatch: {logits.shape} vs {targets.shape}")
    return (softmax(logits) - targets) / logits.shape[0]


def binary_cross_entropy(probs: np.ndarray, labels: np.ndarray) -> float:
    """Mean binary cross-entropy of predicted probabilities vs 0/1 labels."""
    p = np.clip(probs, _EPS, 1.0 - _EPS)
    y = np.asarray(labels, dtype=np.float64)
    return float(-(y * np.log(p) + (1.0 - y) * np.log(1.0 - p)).mean())


def binary_cross_entropy_gradient(probs: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Gradient of BCE w.r.t. the *pre-sigmoid logit* (``p - y``) / n."""
    y = np.asarray(labels, dtype=np.float64)
    return (probs - y) / probs.shape[0]


def mse(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Mean squared error."""
    diff = predictions - targets
    return float((diff * diff).mean())


def mse_gradient(predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Gradient of MSE w.r.t. the predictions."""
    return 2.0 * (predictions - targets) / predictions.size
