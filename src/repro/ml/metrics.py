"""Evaluation metrics for classifiers and distribution predictions."""

from __future__ import annotations

import numpy as np

__all__ = [
    "accuracy",
    "precision",
    "recall",
    "f1_score",
    "confusion_matrix",
    "log_loss",
    "mean_kl_to_targets",
    "brier_score",
]

_EPS = 1e-12


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact label matches."""
    t = np.asarray(y_true).ravel()
    p = np.asarray(y_pred).ravel()
    if t.size != p.size:
        raise ValueError("label arrays must have equal length")
    if t.size == 0:
        raise ValueError("need at least one label")
    return float((t == p).mean())


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray, *, num_classes: int | None = None) -> np.ndarray:
    """``C[i, j]`` counts samples with true class ``i`` predicted as ``j``."""
    t = np.asarray(y_true, dtype=np.int64).ravel()
    p = np.asarray(y_pred, dtype=np.int64).ravel()
    if t.size != p.size:
        raise ValueError("label arrays must have equal length")
    k = num_classes or int(max(t.max(initial=0), p.max(initial=0))) + 1
    out = np.zeros((k, k), dtype=np.int64)
    np.add.at(out, (t, p), 1)
    return out


def precision(y_true: np.ndarray, y_pred: np.ndarray, *, positive: int = 1) -> float:
    """``TP / (TP + FP)``; 0 when nothing was predicted positive."""
    t = np.asarray(y_true).ravel()
    p = np.asarray(y_pred).ravel()
    predicted = p == positive
    if not predicted.any():
        return 0.0
    return float((t[predicted] == positive).mean())


def recall(y_true: np.ndarray, y_pred: np.ndarray, *, positive: int = 1) -> float:
    """``TP / (TP + FN)``; 0 when the class never occurs."""
    t = np.asarray(y_true).ravel()
    p = np.asarray(y_pred).ravel()
    actual = t == positive
    if not actual.any():
        return 0.0
    return float((p[actual] == positive).mean())


def f1_score(y_true: np.ndarray, y_pred: np.ndarray, *, positive: int = 1) -> float:
    """Harmonic mean of precision and recall."""
    p = precision(y_true, y_pred, positive=positive)
    r = recall(y_true, y_pred, positive=positive)
    if p + r == 0.0:
        return 0.0
    return 2.0 * p * r / (p + r)


def log_loss(y_true: np.ndarray, probabilities: np.ndarray) -> float:
    """Mean negative log-likelihood of the true class."""
    labels = np.asarray(y_true, dtype=np.int64).ravel()
    probs = np.asarray(probabilities, dtype=np.float64)
    if probs.ndim != 2 or probs.shape[0] != labels.size:
        raise ValueError("probabilities must be (n, k) aligned with labels")
    picked = np.clip(probs[np.arange(labels.size), labels], _EPS, 1.0)
    return float(-np.log(picked).mean())


def brier_score(y_true: np.ndarray, prob_positive: np.ndarray) -> float:
    """Mean squared error of the positive-class probability (binary)."""
    y = np.asarray(y_true, dtype=np.float64).ravel()
    p = np.asarray(prob_positive, dtype=np.float64).ravel()
    if y.size != p.size:
        raise ValueError("arrays must have equal length")
    return float(((p - y) ** 2).mean())


def mean_kl_to_targets(targets: np.ndarray, predictions: np.ndarray) -> float:
    """Mean ``KL(target_row || prediction_row)`` over a batch of histograms.

    The vectorised batch version of the paper's model-quality metric, used on
    the delay-profile matrices produced by the training pipeline.
    """
    t = np.asarray(targets, dtype=np.float64)
    p = np.asarray(predictions, dtype=np.float64)
    if t.shape != p.shape:
        raise ValueError(f"shape mismatch: {t.shape} vs {p.shape}")
    p = np.clip(p, _EPS, None)
    p = p / p.sum(axis=1, keepdims=True)
    mask = t > 0
    ratio = np.zeros_like(t)
    ratio[mask] = t[mask] * np.log(t[mask] / p[mask])
    return float(ratio.sum(axis=1).mean())
