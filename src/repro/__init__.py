"""repro — reproduction of "A Hybrid Learning Approach to Stochastic Routing"
(Pedersen, Yang, Jensen; ICDE 2020).

Subpackages
-----------
``repro.histograms``
    Travel-time distribution algebra (convolution, dominance, KL, joints).
``repro.network``
    Road-network graphs, OSM import, synthetic generators, shortest paths.
``repro.trajectories``
    Ground-truth congestion model, trip generation, map matching, corpus.
``repro.ml``
    From-scratch NumPy ML stack (MLP, logistic regression, trees, forests).
``repro.core``
    The paper's Hybrid Model: estimator + classifier + path-cost recursion.
``repro.routing``
    Probabilistic budget routing with pruning and the anytime extension.
``repro.experiments``
    Workloads and experiments regenerating every table in the paper.
``repro.service``
    Serving layer: versioned result cache, live cost updates, time slices.
"""

__version__ = "1.0.0"

__all__ = [
    "core",
    "experiments",
    "histograms",
    "ml",
    "network",
    "routing",
    "service",
    "trajectories",
]
